"""Tests for the pyNVML-compatible sampling layer."""

from __future__ import annotations

import pytest

from repro.cluster.gpu import GPU
from repro.telemetry.nvml import METRICS, NVMLError, NvmlContext, NvmlSampler
from repro.workloads.base import ResourceDemand


@pytest.fixture
def busy_gpu() -> GPU:
    gpu = GPU("n/gpu0", mem_capacity_mb=16_384)
    gpu.attach("p", 2_000)
    gpu.arbitrate({"p": ResourceDemand(sm=0.5, mem_mb=1_638.4, tx_mbps=100.0, rx_mbps=200.0)})
    return gpu


class TestContext:
    def test_device_count(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        assert ctx.device_get_count() == 1

    def test_utilization_rates_in_percent(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        rates = ctx.device_get_utilization_rates(ctx.device_get_handle_by_index(0))
        assert rates.gpu == pytest.approx(50.0)
        assert rates.memory == pytest.approx(10.0)

    def test_memory_info_in_bytes(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        info = ctx.device_get_memory_info(ctx.device_get_handle_by_index(0))
        assert info.total == 16_384 * 1024 * 1024
        assert info.used + info.free == info.total

    def test_power_in_milliwatts(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        mw = ctx.device_get_power_usage(ctx.device_get_handle_by_index(0))
        assert mw == int(busy_gpu.last_sample.power_w * 1000)

    def test_invalid_index(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        with pytest.raises(NVMLError):
            ctx.device_get_handle_by_index(5)

    def test_shutdown_invalidates(self, busy_gpu):
        ctx = NvmlContext([busy_gpu])
        ctx.shutdown()
        with pytest.raises(NVMLError):
            ctx.device_get_count()


class TestSampler:
    def test_sample_covers_all_metrics(self, busy_gpu):
        sampler = NvmlSampler([busy_gpu])
        out = sampler.sample()
        assert set(out) == {"n/gpu0"}
        assert set(out["n/gpu0"]) == set(METRICS)

    def test_sample_units_normalized(self, busy_gpu):
        out = NvmlSampler([busy_gpu]).sample()["n/gpu0"]
        assert out["sm_util"] == pytest.approx(0.5)
        assert out["mem_util"] == pytest.approx(0.1)
        assert out["tx_mbps"] == pytest.approx(100.0)
        assert out["rx_mbps"] == pytest.approx(200.0)
        assert out["power_w"] > 0

    def test_idle_device_samples_zero_utilization(self):
        gpu = GPU("n/gpu1")
        gpu.arbitrate({})
        out = NvmlSampler([gpu]).sample()["n/gpu1"]
        assert out["sm_util"] == 0.0
        assert out["mem_util"] == 0.0
