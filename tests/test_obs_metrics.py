"""Tests for counters/gauges/histograms and the Prometheus exporter."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_counters_only_go_up(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labelled_series_are_independent(self):
        c = Counter("actions_total", labelnames=("kind",))
        c.inc(kind="bind")
        c.inc(kind="bind")
        c.inc(kind="resize")
        assert c.value(kind="bind") == 2.0
        assert c.value(kind="resize") == 1.0
        assert c.value(kind="sleep") == 0.0

    def test_wrong_label_set_rejected(self):
        c = Counter("actions_total", labelnames=("kind",))
        with pytest.raises(ValueError):
            c.inc(color="red")
        with pytest.raises(ValueError):
            c.inc()

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name with spaces")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("queue_depth")
        g.set(7.0)
        g.inc(-2.0)   # gauges may go down
        assert g.value() == 5.0


class TestHistogramBucketing:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are "le" (<=): an observation exactly on a
        # boundary counts toward that boundary's bucket.
        h = Histogram("lat_ms", buckets=(10.0, 100.0))
        h.observe(10.0)
        counts = h.bucket_counts()
        assert counts[10.0] == 1
        assert counts[100.0] == 1
        assert counts[math.inf] == 1

    def test_cumulative_counts(self):
        h = Histogram("lat_ms", buckets=(10.0, 100.0, 1000.0))
        for v in (5.0, 50.0, 500.0, 5_000.0):
            h.observe(v)
        counts = h.bucket_counts()
        assert counts == {10.0: 1, 100.0: 2, 1000.0: 3, math.inf: 4}
        assert h.count() == 4
        assert h.sum() == pytest.approx(5_555.0)

    def test_overflow_bucket(self):
        h = Histogram("lat_ms", buckets=(1.0,))
        h.observe(99.0)
        assert h.bucket_counts() == {1.0: 0, math.inf: 1}

    def test_unsorted_bucket_input_is_sorted(self):
        h = Histogram("lat_ms", buckets=(100.0, 1.0, 10.0))
        assert h.buckets == (1.0, 10.0, 100.0)

    def test_duplicate_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat_ms", buckets=(1.0, 1.0))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("lat_ms", buckets=())


class TestPrometheusRender:
    def test_counter_text_format(self):
        c = Counter("pods_total", "Pods seen", labelnames=("qos",))
        c.inc(3, qos="batch")
        lines = c.render()
        assert lines[0] == "# HELP pods_total Pods seen"
        assert lines[1] == "# TYPE pods_total counter"
        assert 'pods_total{qos="batch"} 3' in lines

    def test_histogram_text_format(self):
        h = Histogram("wait_ms", "Queue wait", buckets=(10.0, 100.0))
        h.observe(7.0)
        h.observe(70.0)
        h.observe(700.0)
        lines = h.render()
        assert 'wait_ms_bucket{le="10"} 1' in lines
        assert 'wait_ms_bucket{le="100"} 2' in lines
        assert 'wait_ms_bucket{le="+Inf"} 3' in lines
        assert "wait_ms_sum 777" in lines
        assert "wait_ms_count 3" in lines

    def test_unobserved_histogram_still_exposes_buckets(self):
        h = Histogram("wait_ms", buckets=(10.0,))
        lines = h.render()
        assert 'wait_ms_bucket{le="+Inf"} 0' in lines
        assert "wait_ms_count 0" in lines

    def test_registry_render_is_sorted_and_terminated(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("z_total").inc()
        reg.gauge("a_gauge").set(1.0)
        text = reg.render()
        assert text.endswith("\n")
        assert text.index("a_gauge") < text.index("z_total")
        path = tmp_path / "metrics.prom"
        reg.write(path)
        assert path.read_text() == text


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        b = reg.counter("x_total")
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_lookup(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        assert reg.get("x_total") is c
        assert reg.get("missing") is None
        assert reg.names() == ["x_total"]


class TestNullRegistry:
    def test_instruments_are_shared_noops(self):
        reg = NullMetricsRegistry()
        c1 = reg.counter("a_total")
        c2 = reg.counter("b_total")
        assert c1 is c2
        c1.inc(100)
        assert c1.value() == 0.0
        reg.gauge("g").set(5.0)
        reg.histogram("h").observe(1.0)
        assert reg.render() == ""
        assert reg.enabled is False


class TestLabelEscaping:
    def test_backslash_quote_and_newline_escaped_in_label_values(self):
        c = Counter("weird_total", labelnames=("path",))
        c.inc(path='C:\\pods\n"quoted"')
        line = c.render()[-1]
        assert line == 'weird_total{path="C:\\\\pods\\n\\"quoted\\""} 1'
        # The rendered line must stay one physical line.
        assert "\n" not in line

    def test_help_text_newline_and_backslash_escaped(self):
        g = Gauge("g", help="line one\nline two \\ slash")
        help_line = g.render()[0]
        assert help_line == "# HELP g line one\\nline two \\\\ slash"
        assert "\n" not in help_line

    def test_plain_values_unchanged(self):
        c = Counter("plain_total", labelnames=("kind",))
        c.inc(kind="bind")
        assert c.render()[-1] == 'plain_total{kind="bind"} 1'


GOLDEN = "tests/fixtures/metrics.prom"


def _golden_registry() -> MetricsRegistry:
    """A registry covering every instrument kind, label escaping and
    insertion order != sort order; pinned byte-for-byte by the golden
    file so /metrics stays deterministic across refactors."""
    reg = MetricsRegistry()
    # Registered out of name order: render() must sort.
    g = reg.gauge("zz_queue_depth", "Admission-queue depth")
    g.set(7)
    c = reg.counter(
        "serve_requests_total",
        "Requests by outcome",
        labelnames=("outcome", "route"),
    )
    # Insertion order differs from sorted label-key order.
    c.inc(outcome="rejected", route="/v1/pods")
    c.inc(3, outcome="accepted", route="/v1/pods")
    c.inc(outcome="accepted", route='odd\\"name\n')
    h = reg.histogram("decision_ms", "Decision latency", buckets=(1.0, 10.0))
    for v in (0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    reg.counter("empty_total", "Never incremented")
    return reg


def test_render_matches_golden_file():
    rendered = _golden_registry().render()
    with open(GOLDEN, encoding="utf-8") as fh:
        assert rendered == fh.read()


def test_render_is_byte_stable_across_construction_orders():
    assert _golden_registry().render() == _golden_registry().render()
