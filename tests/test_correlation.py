"""Tests for Spearman correlation (Eq. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st
from scipy import stats as sps

from repro.forecast.correlation import (
    correlation_matrix,
    is_safe_to_colocate,
    rankdata,
    spearman,
)


class TestRankdata:
    def test_simple_ranks(self):
        assert list(rankdata(np.array([30.0, 10.0, 20.0]))) == [3.0, 1.0, 2.0]

    def test_ties_get_average_rank(self):
        ranks = rankdata(np.array([1.0, 2.0, 2.0, 3.0]))
        assert list(ranks) == [1.0, 2.5, 2.5, 4.0]

    def test_matches_scipy(self, rng):
        x = rng.integers(0, 5, 50).astype(float)
        assert np.allclose(rankdata(x), sps.rankdata(x))


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.arange(10.0)
        assert spearman(x, x**3) == pytest.approx(1.0)
        assert spearman(x, -x) == pytest.approx(-1.0)

    def test_matches_scipy_no_ties(self, rng):
        x, y = rng.normal(size=40), rng.normal(size=40)
        ours = spearman(x, y)
        theirs = sps.spearmanr(x, y).statistic
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_matches_scipy_with_ties(self, rng):
        x = rng.integers(0, 4, 60).astype(float)
        y = rng.integers(0, 4, 60).astype(float)
        assert spearman(x, y) == pytest.approx(sps.spearmanr(x, y).statistic, abs=1e-12)

    def test_constant_series_is_uncorrelated(self):
        assert spearman(np.ones(10), np.arange(10.0)) == 0.0

    def test_too_short_series(self):
        assert spearman(np.array([1.0]), np.array([2.0])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman(np.arange(3.0), np.arange(4.0))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=60))
    def test_bounded_and_symmetric(self, xs):
        x = np.asarray(xs)
        y = np.sin(x)  # arbitrary deterministic partner
        rho = spearman(x, y)
        assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9
        assert spearman(y, x) == pytest.approx(rho)


class TestMatrixAndGate:
    def test_matrix_symmetric_unit_diagonal(self, rng):
        series = {k: rng.normal(size=30) for k in ("a", "b", "c")}
        names, mat = correlation_matrix(series)
        assert names == ["a", "b", "c"]
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 1.0)

    def test_colocate_gate_blocks_positive_pairs(self, rng):
        base = rng.normal(size=50).cumsum()
        assert not is_safe_to_colocate(base, base + rng.normal(0, 0.01, 50))
        assert is_safe_to_colocate(base, -base)

    def test_colocate_threshold(self, rng):
        x = np.arange(20.0)
        assert not is_safe_to_colocate(x, x, threshold=0.99)
        assert is_safe_to_colocate(x, -x, threshold=0.0)
