"""Tests for the node-local time-series database."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.telemetry.tsdb import TimeSeriesDB


class TestBasics:
    def test_write_and_query(self):
        db = TimeSeriesDB()
        for t in range(10):
            db.write("m", float(t), float(t) * 2)
        window = db.query("m", since=3.0, until=7.0)
        assert list(window.times) == [3, 4, 5, 6, 7]
        assert list(window.values) == [6, 8, 10, 12, 14]

    def test_unknown_metric_yields_empty(self):
        db = TimeSeriesDB()
        window = db.query("ghost")
        assert len(window) == 0

    def test_metrics_listing(self):
        db = TimeSeriesDB()
        db.write("b", 0, 1)
        db.write("a", 0, 1)
        assert db.metrics() == ["a", "b"]
        assert "a" in db and "ghost" not in db

    def test_write_many(self):
        db = TimeSeriesDB()
        db.write_many(1.0, {"x": 1.0, "y": 2.0})
        assert db.latest("x") == (1.0, 1.0)
        assert db.latest("y") == (1.0, 2.0)

    def test_latest_none_when_empty(self):
        assert TimeSeriesDB().latest("m") is None

    def test_last_window(self):
        db = TimeSeriesDB()
        for t in range(100):
            db.write("m", float(t), float(t))
        w = db.last_window("m", window=10.0, now=50.0)
        assert w.times[0] == 40.0 and w.times[-1] == 50.0
        assert w.latest() == 50.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TimeSeriesDB(capacity=0)

    def test_empty_window_latest_raises(self):
        db = TimeSeriesDB()
        with pytest.raises(ValueError):
            db.query("ghost").latest()

    def test_non_monotonic_append_rejected(self):
        db = TimeSeriesDB()
        db.write("m", 5.0, 1.0)
        with pytest.raises(ValueError, match="non-monotonic append"):
            db.write("m", 4.9, 2.0)
        # The bad point was not stored; the series still queries fine.
        assert db.latest("m") == (5.0, 1.0)
        db.write("m", 5.0, 3.0)      # equal timestamps stay legal
        assert len(db.query("m")) == 2

    def test_monotonicity_is_per_series(self):
        db = TimeSeriesDB()
        db.write("a", 10.0, 1.0)
        db.write("b", 1.0, 1.0)      # older than a's clock: fine
        assert db.latest("b") == (1.0, 1.0)

    def test_version_counts_writes(self):
        db = TimeSeriesDB()
        assert db.version("m") == 0
        for i in range(5):
            db.write("m", float(i), 0.0)
        assert db.version("m") == 5


class TestRingBehaviour:
    def test_wraparound_keeps_newest(self):
        db = TimeSeriesDB(capacity=8)
        for t in range(20):
            db.write("m", float(t), float(t))
        window = db.query("m")
        assert len(window) == 8
        assert list(window.times) == list(range(12, 20))

    def test_order_preserved_after_wrap(self):
        db = TimeSeriesDB(capacity=5)
        for t in range(13):
            db.write("m", float(t), float(t))
        times = db.query("m").times
        assert np.all(np.diff(times) > 0)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=64))
    def test_count_never_exceeds_capacity(self, n_points, capacity):
        db = TimeSeriesDB(capacity=capacity)
        for t in range(n_points):
            db.write("m", float(t), 0.0)
        assert len(db.query("m")) == min(n_points, capacity)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=100),
    )
    def test_windows_subset_of_written(self, values):
        db = TimeSeriesDB(capacity=64)
        for i, v in enumerate(values):
            db.write("m", float(i), v)
        w = db.last_window("m", window=10.0, now=float(len(values)))
        assert set(w.values) <= set(values)
