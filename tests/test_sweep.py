"""Tests for the parallel sweep fabric (repro.sweep).

The load-bearing guarantees:

* serial, process-pool and warm-cache resolutions of the same tasks are
  **byte-identical** (cross-process determinism);
* cache keys track every outcome-relevant knob and the code version, so
  a stale cache can never masquerade as a fresh result;
* a worker that dies poisons the sweep loudly (``SweepError`` naming
  the task) instead of hanging it, and a ``SanitizerError`` raised in a
  worker crosses the pool boundary intact (the CLI's exit-3 contract).
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass

import pytest

import repro
from repro.analysis.sanitizer import SanitizerError, Violation
from repro.experiments.runner import ExperimentSettings, clear, mix_run
from repro.sweep import DLTask, MixTask, SweepError, run_tasks, task_key
from repro.sweep.fabric import clear_memo, last_stats
from repro.sweep.store import SCHEMA_TAG, ResultStore

SMALL = ExperimentSettings(duration_s=2.0, num_nodes=4, seed=7)
TASKS = [MixTask("app-mix-1", s, SMALL) for s in ("cbp", "uniform")]


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memo()
    yield
    clear_memo()


@dataclass(frozen=True)
class _CrashTask:
    """A task whose worker dies without raising (exercises pool death)."""

    idx: int

    def execute(self):  # pragma: no cover - runs (and dies) in a worker
        os._exit(2)


class TestDeterminism:
    def test_serial_pool_and_cache_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        serial = run_tasks(TASKS, jobs=1, store=store, memo=False)
        store.clear()
        pooled = run_tasks(TASKS, jobs=2, store=store, memo=False)
        assert last_stats()["misses"] == len(TASKS)
        cached = run_tasks(TASKS, jobs=2, store=store, memo=False)
        assert last_stats() == {"tasks": 2, "hits": 2, "misses": 0, "workers": 0}
        for a, b, c in zip(serial, pooled, cached):
            assert pickle.dumps(a) == pickle.dumps(b) == pickle.dumps(c)

    def test_duplicate_tasks_resolve_once(self, tmp_path):
        task = MixTask("app-mix-1", "uniform", SMALL)
        results = run_tasks([task, task, task], jobs=1, store=ResultStore(tmp_path))
        stats = last_stats()
        assert stats["tasks"] == 3 and stats["misses"] == 1
        assert results[0] is results[1] is results[2]


class TestCacheKeys:
    def test_key_is_stable_across_equal_tasks(self):
        a = MixTask("app-mix-1", "cbp", ExperimentSettings(duration_s=5.0))
        b = MixTask("app-mix-1", "cbp", ExperimentSettings(duration_s=5.0))
        assert task_key(a) == task_key(b)

    def test_every_knob_changes_the_key(self):
        base = MixTask("app-mix-1", "cbp", SMALL)
        variants = [
            MixTask("app-mix-2", "cbp", SMALL),
            MixTask("app-mix-1", "uniform", SMALL),
            MixTask("app-mix-1", "cbp", ExperimentSettings(duration_s=2.0, num_nodes=4, seed=8)),
            MixTask("app-mix-1", "cbp", ExperimentSettings(duration_s=2.0, num_nodes=4, seed=7,
                                                           fast_forward=False)),
            MixTask("app-mix-1", "cbp", SMALL, scheduler_kwargs=(("correlation_threshold", 0.7),)),
            MixTask("app-mix-1", "cbp", SMALL, heartbeat_ms=500.0),
        ]
        keys = {task_key(t) for t in variants}
        assert task_key(base) not in keys
        assert len(keys) == len(variants)

    def test_task_types_do_not_collide(self):
        assert task_key(MixTask("m", "s", SMALL)) != task_key(DLTask("s"))

    def test_version_bump_invalidates(self, monkeypatch, tmp_path):
        task = MixTask("app-mix-1", "uniform", SMALL)
        store = ResultStore(tmp_path)
        run_tasks([task], jobs=1, store=store, memo=False)
        old_key = task_key(task)
        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        assert task_key(task) != old_key
        run_tasks([task], jobs=1, store=store, memo=False)
        assert last_stats()["misses"] == 1  # the old entry no longer matches


class TestStore:
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" + "0" * 62, object(), {"x": 1})
        path = store._path("ab" + "0" * 62)
        path.write_bytes(b"not a pickle")
        assert store.get("ab" + "0" * 62) is None
        assert not path.exists()

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, object(), {"x": 1})
        payload = pickle.loads(store._path(key).read_bytes())
        assert payload["schema"] == SCHEMA_TAG
        payload["schema"] = "something-else/v0"
        store._path(key).write_bytes(pickle.dumps(payload))
        assert store.get(key) is None

    def test_env_var_redirects_default_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert ResultStore().root == tmp_path / "cache"


class TestMixRunView:
    def test_mix_run_uses_store_and_clear_invalidates_memo(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = mix_run("app-mix-1", "uniform", SMALL)
        assert last_stats()["misses"] == 1
        assert len(ResultStore()) == 1
        memo_hit = mix_run("app-mix-1", "uniform", SMALL)
        assert last_stats()["hits"] == 1 and memo_hit is first
        clear()  # memo dropped, disk kept
        disk_hit = mix_run("app-mix-1", "uniform", SMALL)
        assert last_stats() == {"tasks": 1, "hits": 1, "misses": 0, "workers": 0}
        assert disk_hit is not first
        assert pickle.dumps(disk_hit) == pickle.dumps(first)
        clear(disk=True)
        assert len(ResultStore()) == 0


class TestFailurePaths:
    def test_dead_worker_raises_sweep_error_not_hang(self, tmp_path):
        with pytest.raises(SweepError, match="_CrashTask"):
            run_tasks([_CrashTask(0), _CrashTask(1)], jobs=2,
                      store=ResultStore(tmp_path), memo=False)

    def test_sanitizer_error_survives_pickling(self):
        violation = Violation("dl-time-monotonic", 12.5, "time went backwards", {"dt": -1.0})
        err = pickle.loads(pickle.dumps(SanitizerError(violation)))
        assert isinstance(err, SanitizerError)
        assert err.violation == violation
        assert str(err) == str(SanitizerError(violation))


class TestThreadSafety:
    def test_concurrent_run_tasks_keep_memo_and_stats_coherent(self, tmp_path):
        # Regression for the fabric state lock: module-level memo and
        # stats are shared across callers, so concurrent run_tasks()
        # calls must neither corrupt them nor diverge in results.
        store = ResultStore(tmp_path)
        task = MixTask("app-mix-1", "uniform", SMALL)
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def work(idx: int):
            try:
                results[idx] = run_tasks([task], jobs=1, store=store)
            except BaseException as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(results) == 4
        payloads = {pickle.dumps(r[0]) for r in results.values()}
        assert len(payloads) == 1, "concurrent callers saw divergent results"
        stats = last_stats()
        assert stats["tasks"] == 1
        assert stats["hits"] + stats["misses"] == 1  # a coherent snapshot
