"""Tests for the online per-image profile store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiles import PROFILE_SERIES_POINTS, ImageProfile, ProfileStore
from tests.conftest import make_trace


class TestImageProfile:
    def test_update_accumulates(self):
        profile = ImageProfile("img")
        trace = make_trace(mem_mb=1_000, peak_mem_mb=4_000)
        profile.update(trace.sample_series(5.0), runtime_ms=trace.total_ms)
        assert profile.observations == 1
        assert profile.mem_series.shape == (PROFILE_SERIES_POINTS,)
        assert profile.peak_mem_mb() == pytest.approx(4_000)
        assert profile.mean_runtime_ms == pytest.approx(trace.total_ms)

    def test_running_mean_of_series(self):
        profile = ImageProfile("img")
        lo = make_trace(mem_mb=1_000, peak_mem_mb=1_000)
        hi = make_trace(mem_mb=3_000, peak_mem_mb=3_000)
        profile.update(lo.sample_series(5.0), runtime_ms=100)
        profile.update(hi.sample_series(5.0), runtime_ms=100)
        assert profile.mem_series.mean() == pytest.approx(2_000, rel=0.01)

    def test_percentile_pools_samples(self):
        profile = ImageProfile("img")
        trace = make_trace(mem_mb=1_000, peak_mem_mb=8_000)  # peak 10 % of time
        profile.update(trace.sample_series(1.0), runtime_ms=trace.total_ms)
        assert profile.mem_percentile(80) == pytest.approx(1_000)
        assert profile.mem_percentile(99) > 6_000

    def test_no_observations_raises(self):
        with pytest.raises(ValueError):
            ImageProfile("img").peak_mem_mb()

    def test_sample_history_bounded(self):
        profile = ImageProfile("img")
        trace = make_trace()
        for _ in range(40):
            profile.update(trace.sample_series(10.0), runtime_ms=1.0)
        assert len(profile._mem_samples) <= 32
        assert profile.observations == 40


class TestProfileStore:
    def test_record_creates_profile(self):
        store = ProfileStore()
        store.record_trace("img/a", make_trace())
        assert "img/a" in store
        assert store.get("img/a").observations == 1
        assert store.images() == ["img/a"]

    def test_provision_unknown_image_uses_request(self):
        store = ProfileStore()
        assert store.provision_mb("ghost", 5_000) == 5_000

    def test_provision_known_image_uses_percentile(self):
        store = ProfileStore()
        store.record_trace("img", make_trace(mem_mb=1_000, peak_mem_mb=8_000))
        alloc = store.provision_mb("img", requested_mb=10_000, percentile=80)
        assert alloc == pytest.approx(1_000, rel=0.05)

    def test_provision_never_exceeds_request(self):
        """Harvesting only shrinks reservations."""
        store = ProfileStore()
        store.record_trace("img", make_trace(mem_mb=4_000, peak_mem_mb=4_000))
        assert store.provision_mb("img", requested_mb=500) == 500

    def test_correlation_series_none_for_unknown(self):
        assert ProfileStore().correlation_series("ghost") is None

    def test_correlation_series_fixed_length(self):
        store = ProfileStore()
        store.record_trace("img", make_trace(duration_ms=333.0))
        series = store.correlation_series("img")
        assert series.shape == (PROFILE_SERIES_POINTS,)

    def test_correlation_ranks_none_for_unknown(self):
        assert ProfileStore().correlation_ranks("ghost") is None

    def test_correlation_ranks_cached_per_observation_count(self):
        store = ProfileStore()
        store.record_trace("img", make_trace(mem_mb=1_000, peak_mem_mb=4_000))
        ranks1, _ = store.correlation_ranks("img")
        ranks2, _ = store.correlation_ranks("img")
        assert ranks2 is ranks1                   # same cached vector
        assert not ranks1.flags.writeable         # shared -> immutable

        store.record_trace("img", make_trace(mem_mb=3_000, peak_mem_mb=3_000))
        ranks3, _ = store.correlation_ranks("img")
        assert ranks3 is not ranks1               # new observation invalidates

    def test_version_tracks_observations(self):
        store = ProfileStore()
        assert store.version("ghost") == 0
        store.record_trace("img", make_trace())
        assert store.version("img") == 1
        store.record_trace("img", make_trace())
        assert store.version("img") == 2
