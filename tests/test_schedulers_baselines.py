"""Tests for the Uniform and Res-Ag baseline schedulers."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import ResourceAgnosticScheduler, UniformScheduler
from repro.core.schedulers.base import Bind
from repro.kube.pod import PodPhase
from tests.conftest import make_spec


def build(scheduler, nodes=3):
    cluster = make_paper_cluster(num_nodes=nodes)
    return cluster, KubeKnots(cluster, scheduler)


class TestUniform:
    def test_exclusive_one_pod_per_gpu(self):
        cluster, kk = build(UniformScheduler(), nodes=2)
        for i in range(3):
            kk.api.submit(make_spec(f"p{i}", mem_mb=100.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert len(binds) == 2                       # only 2 GPUs
        assert len({b.gpu_id for b in binds}) == 2   # all distinct

    def test_head_of_line_blocking(self):
        """If the head pod cannot be placed, nothing behind it runs."""
        cluster, kk = build(UniformScheduler(), nodes=1)
        first = kk.api.submit(make_spec("first"), 0.0)
        kk.scheduling_pass(0.0)
        assert first.phase is PodPhase.SCHEDULED
        # device now busy; a tiny pod behind the queue head must wait
        kk.api.submit(make_spec("blocked-head", mem_mb=100.0), 1.0)
        kk.api.submit(make_spec("tiny", mem_mb=1.0), 1.0)
        actions = kk.scheduling_pass(1.0)
        assert not [a for a in actions if isinstance(a, Bind)]

    def test_fifo_order(self):
        cluster, kk = build(UniformScheduler(), nodes=2)
        a = kk.api.submit(make_spec("a"), 0.0)
        b = kk.api.submit(make_spec("b"), 0.0)
        c = kk.api.submit(make_spec("c"), 0.0)
        kk.scheduling_pass(0.0)
        assert a.phase is PodPhase.SCHEDULED
        assert b.phase is PodPhase.SCHEDULED
        assert c.phase is PodPhase.PENDING

    def test_requires_exclusive_plugin(self):
        assert UniformScheduler.requires_sharing is False


class TestResAg:
    def test_packs_first_fit_lowest_node(self):
        cluster, kk = build(ResourceAgnosticScheduler())
        for i in range(3):
            kk.api.submit(make_spec(f"p{i}", mem_mb=2_000.0, requested_mem_mb=3_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert len(binds) == 3
        assert {b.gpu_id for b in binds} == {"node1/gpu0"}   # all on node1

    def test_ffd_orders_big_pods_first(self):
        cluster, kk = build(ResourceAgnosticScheduler())
        small = kk.api.submit(make_spec("small", requested_mem_mb=1_000.0), 0.0)
        big = kk.api.submit(make_spec("big", requested_mem_mb=12_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert binds[0].pod_uid == big.uid

    def test_static_requests_fragment(self):
        """Over-stated requests strand capacity (the Res-Ag pathology)."""
        cluster, kk = build(ResourceAgnosticScheduler(), nodes=1)
        kk.api.submit(make_spec("a", mem_mb=1_000.0, requested_mem_mb=10_000.0), 0.0)
        kk.api.submit(make_spec("b", mem_mb=1_000.0, requested_mem_mb=10_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert len(binds) == 1     # second 10 GB earmark does not fit

    def test_clip_mode_packs_denser(self):
        cluster, kk = build(ResourceAgnosticScheduler(clip_requests=True), nodes=1)
        kk.api.submit(make_spec("a", mem_mb=1_000.0, requested_mem_mb=10_000.0), 0.0)
        kk.api.submit(make_spec("b", mem_mb=1_000.0, requested_mem_mb=10_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert len(binds) == 2
        assert binds[1].alloc_mb < 10_000.0   # clipped into the leftovers

    def test_share_count_cap(self):
        cluster, kk = build(ResourceAgnosticScheduler(max_pods_per_gpu=2), nodes=1)
        for i in range(4):
            kk.api.submit(make_spec(f"p{i}", requested_mem_mb=100.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        assert len([a for a in actions if isinstance(a, Bind)]) == 2
