"""Failure-injection tests: device loss, eviction, failover.

Datacenter GPUs fall off the bus (ECC errors, driver wedges); the
orchestration stack must evict the orphaned pods, requeue them, route
new work around the failed device, and absorb it back after repair.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.cluster.gpu import GPU
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Bind
from repro.kube.api import EventType
from repro.kube.pod import PodPhase
from repro.sim.simulator import DeviceFault, KubeKnotsSimulator, SimConfig
from tests.conftest import make_spec


class TestDeviceFailure:
    def test_fail_orphans_containers(self):
        gpu = GPU("g")
        gpu.attach("a", 100)
        gpu.attach("b", 200)
        victims = gpu.fail()
        assert victims == ["a", "b"]
        assert gpu.failed and not gpu.containers

    def test_failed_device_refuses_work(self):
        gpu = GPU("g")
        gpu.fail()
        assert not gpu.can_fit(1.0)
        with pytest.raises(ValueError):
            gpu.attach("a", 1.0)

    def test_repair_restores_service(self):
        gpu = GPU("g")
        gpu.fail()
        gpu.repair()
        assert not gpu.failed
        gpu.attach("a", 1.0)


class TestEvictionFlow:
    def test_kubelet_evicts_and_requeues(self):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"))
        pod = kk.api.submit(make_spec(duration_ms=5_000.0), 0.0)
        kk.scheduling_pass(0.0)
        assert pod.gpu_id is not None
        cluster.find_gpu(pod.gpu_id).fail()
        kk.step_kubelets(10.0, 10.0)
        assert pod.phase is PodPhase.PENDING
        assert pod.restart_count == 1
        assert len(kk.api.events_of(EventType.EVICTED)) == 1

    def test_scheduler_routes_around_failed_device(self):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"))
        cluster.find_gpu("node1/gpu0").fail()
        pod = kk.api.submit(make_spec(), 0.0)
        actions = kk.scheduling_pass(0.0)
        bind = next(a for a in actions if isinstance(a, Bind))
        assert bind.gpu_id == "node2/gpu0"

    def test_all_schedulers_skip_failed_devices(self):
        for name in ("uniform", "res-ag", "cbp", "peak-prediction"):
            cluster = make_paper_cluster(num_nodes=2)
            kk = KubeKnots(cluster, make_scheduler(name))
            cluster.find_gpu("node1/gpu0").fail()
            kk.api.submit(make_spec(), 0.0)
            actions = kk.scheduling_pass(0.0)
            binds = [a for a in actions if isinstance(a, Bind)]
            assert all(b.gpu_id != "node1/gpu0" for b in binds), name


class TestEndToEndFailover:
    def _workload(self, n=6):
        return [
            (i * 100.0, make_spec(f"p{i}", image=f"img/{i % 2}", duration_ms=800.0, mem_mb=2_000.0))
            for i in range(n)
        ]

    def test_workload_survives_device_loss(self):
        cluster = make_paper_cluster(num_nodes=3)
        config = SimConfig(faults=(DeviceFault(at_ms=400.0, gpu_id="node1/gpu0", duration_ms=3_000.0),))
        sim = KubeKnotsSimulator(cluster, make_scheduler("peak-prediction"), self._workload(), config)
        result = sim.run()
        assert len(result.completed()) == len(result.pods)
        assert result.evictions >= 1

    def test_repaired_device_reused(self):
        cluster = make_paper_cluster(num_nodes=1)
        config = SimConfig(
            faults=(DeviceFault(at_ms=200.0, gpu_id="node1/gpu0", duration_ms=500.0),),
        )
        sim = KubeKnotsSimulator(cluster, make_scheduler("cbp"), self._workload(3), config)
        result = sim.run()
        # with a single device, completion is only possible post-repair
        assert len(result.completed()) == len(result.pods)
        assert result.evictions >= 1

    def test_no_faults_no_evictions(self):
        cluster = make_paper_cluster(num_nodes=3)
        sim = KubeKnotsSimulator(cluster, make_scheduler("cbp"), self._workload())
        assert sim.run().evictions == 0


class TestManyFaults:
    """Regression for the old per-tick repair scan: with hundreds of
    outstanding repairs the old loop re-scanned (and list.remove()d
    from) the repair list every tick — O(n^2) across a fault storm.
    Repairs are now cancellable scheduled events, so a storm costs one
    event per fault plus one per repair."""

    def test_fault_storm_completes_and_repairs_everything(self):
        cluster = make_paper_cluster(num_nodes=8)
        gpu_ids = [g.gpu_id for node in cluster for g in node.gpus]
        # Several waves of faults across every device, overlapping and
        # including duplicate faults on already-failed devices.
        faults = []
        for wave in range(4):
            for i, gpu_id in enumerate(gpu_ids):
                faults.append(DeviceFault(
                    at_ms=100.0 * wave + 7.0 * i,
                    gpu_id=gpu_id,
                    duration_ms=350.0 + 13.0 * (i % 5),
                ))
        workload = [
            (i * 50.0, make_spec(f"storm{i}", image=f"img/{i % 3}",
                                 duration_ms=600.0, mem_mb=1_500.0))
            for i in range(10)
        ]
        sim = KubeKnotsSimulator(
            cluster, make_scheduler("cbp"), workload,
            SimConfig(min_horizon_ms=60_000.0, faults=faults),
        )
        result = sim.run()
        assert len(result.completed()) == len(result.pods)
        # Every device came back: faults either repaired or swallowed.
        assert sim._faults.pending == 0
        assert all(not cluster.find_gpu(g).failed for g in gpu_ids)

    def test_storm_event_count_is_linear_in_faults(self):
        """Event count grows by at most a few events per fault (fault +
        deferred hop + repair), not by faults x ticks."""
        def run_with(n_faults: int) -> tuple[int, float]:
            cluster = make_paper_cluster(num_nodes=8)
            gpu_ids = [g.gpu_id for node in cluster for g in node.gpus]
            faults = [
                DeviceFault(at_ms=5.0 * i, gpu_id=gpu_ids[i % len(gpu_ids)],
                            duration_ms=100.0)
                for i in range(n_faults)
            ]
            sim = KubeKnotsSimulator(
                cluster, make_scheduler("cbp"),
                [(0.0, make_spec("one", duration_ms=300.0, mem_mb=1_000.0))],
                SimConfig(min_horizon_ms=3_000.0, fast_forward=False, faults=faults),
            )
            result = sim.run()
            return sim.events_fired, result.makespan_ms

        base_events, base_makespan = run_with(0)
        storm_events, storm_makespan = run_with(200)
        assert storm_makespan >= base_makespan
        # 200 faults add at most ~4 events each on top of the base run
        # (plus the ticks added by a longer makespan).
        ticks_delta = (storm_makespan - base_makespan) / 10.0
        assert storm_events - base_events <= 4 * 200 + 8 * ticks_delta
