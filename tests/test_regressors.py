"""Tests for the Fig. 10b comparator forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast.regressors import (
    FORECASTERS,
    ArimaForecaster,
    LeastSquaresForecaster,
    MLPForecaster,
    SGDForecaster,
    TheilSenForecaster,
)

ALL = [
    ArimaForecaster(),
    LeastSquaresForecaster(),
    TheilSenForecaster(),
    SGDForecaster(),
    MLPForecaster(),
]


@pytest.mark.parametrize("fc", ALL, ids=lambda f: f.name)
class TestCommonBehaviour:
    def test_empty_window(self, fc):
        assert fc.predict_next(np.array([])) == 0.0

    def test_singleton_window(self, fc):
        assert np.isfinite(fc.predict_next(np.array([5.0])))

    def test_constant_window_predicts_constant(self, fc):
        pred = fc.predict_next(np.full(40, 3.0))
        assert pred == pytest.approx(3.0, abs=0.3)

    def test_linear_trend_tracked(self, fc):
        y = np.linspace(0.0, 1.0, 60)
        pred = fc.predict_next(y)
        assert pred == pytest.approx(1.0, abs=0.25)

    def test_predict_ahead_finite(self, fc):
        rng = np.random.default_rng(0)
        y = np.cumsum(rng.normal(0, 0.1, 80))
        assert np.isfinite(fc.predict_ahead(y, 10))


class TestSpecifics:
    def test_ols_extrapolates_exactly(self):
        y = 2.0 * np.arange(20.0) + 1.0
        pred = LeastSquaresForecaster().predict_ahead(y, 5)
        assert pred == pytest.approx(2.0 * 24 + 1.0)

    def test_theilsen_robust_to_outlier(self):
        y = np.arange(30.0).astype(float)
        y[15] = 1_000.0
        robust = TheilSenForecaster().predict_next(y)
        brittle = LeastSquaresForecaster().predict_next(y)
        assert abs(robust - 30.0) < abs(brittle - 30.0)

    def test_theilsen_subsamples_big_windows(self):
        fc = TheilSenForecaster(max_pairs=100)
        y = np.arange(500.0)
        assert fc.predict_next(y) == pytest.approx(500.0, rel=0.05)

    def test_sgd_deterministic_given_seed(self):
        y = np.sin(np.linspace(0, 3, 50))
        assert SGDForecaster().predict_next(y) == SGDForecaster().predict_next(y)

    def test_mlp_short_window_falls_back(self):
        fc = MLPForecaster(lags=4)
        assert fc.predict_next(np.array([1.0, 2.0, 3.0])) == 3.0

    def test_mlp_learns_periodic_pattern(self):
        t = np.arange(200)
        y = np.sin(2 * np.pi * t / 8)
        pred = MLPForecaster(epochs=400).predict_next(y)
        actual = np.sin(2 * np.pi * 200 / 8)
        assert pred == pytest.approx(actual, abs=0.4)

    def test_registry_complete(self):
        assert {"arima", "theil-sen", "sgd", "mlp", "linear-regression"} == set(FORECASTERS)
