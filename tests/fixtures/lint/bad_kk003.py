"""KK003 fixture: handlers rewriting the past or shared telemetry."""


def handler(loop, knots, gpu_id, now):
    loop.schedule(-5.0, handler)                  # negative delay
    loop.schedule_at(loop.now - 10.0, handler)    # behind the clock
    window = knots.memory_window(gpu_id, now)
    window.values[0] = 0.0                        # mutates the TSDB view
    window.values.sort()                          # in-place mutator
    stats = knots.query(gpu_id, now)
    stats["mem_util"].values[1] = 1.0             # dict-of-windows variant
