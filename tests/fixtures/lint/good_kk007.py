"""KK007 fixture: `with` or acquire-then-try/finally both release safely."""


def withdraw(lock, account, amount):
    with lock:
        account.balance -= amount


def withdraw_legacy(lock, account, amount):
    lock.acquire()
    try:
        account.balance -= amount
    finally:
        lock.release()


def poll(lock, account, amount):
    # Timed acquire whose result is handled explicitly is not a bare
    # acquire (the statement form is what KK007 flags).
    while not lock.acquire(timeout=0.05):
        pass
    try:
        account.balance -= amount
    finally:
        lock.release()
