"""KK004 fixture: accidental shared mutable state in public APIs."""

from dataclasses import dataclass


def submit(pods, queue=[], index={}):     # mutable defaults
    queue.extend(pods)
    return queue, index


@dataclass
class RetryConfig:        # not frozen
    attempts: int = 3
    backoff_ms: float = 100.0
