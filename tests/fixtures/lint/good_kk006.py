"""KK006 fixture: waits happen outside the critical section."""

import time


def drain(lock, conn, inbox_queue):
    time.sleep(0.5)
    payload = conn.recv(4096)
    item = inbox_queue.get(timeout=1.0)   # bounded wait, and not under the lock
    with lock:
        return payload, item
