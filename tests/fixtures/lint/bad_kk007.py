"""KK007 fixture: bare acquire leaks the lock on any exception."""


def withdraw(lock, account, amount):
    lock.acquire()
    account.balance -= amount     # any exception here leaks the lock
    lock.release()
