"""Suppression fixture: every finding silenced with the pragma."""

from dataclasses import dataclass


def submit(pods, queue=[]):  # kk: disable=KK004
    return queue


def start(engine, duration_s):
    engine.run(until_ms=duration_s)  # kk: disable=all


@dataclass
class LooseConfig:  # kk: disable=KK004
    knob: int = 1
