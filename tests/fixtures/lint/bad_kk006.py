"""KK006 fixture: blocking calls while holding a lock."""

import time


def drain(lock, conn, inbox_queue):
    with lock:
        time.sleep(0.5)               # sleeps under the lock
        payload = conn.recv(4096)     # network wait under the lock
        item = inbox_queue.get()      # untimed queue wait under the lock
    return payload, item
