"""KK003 fixture: forward scheduling and copy-before-modify."""


def handler(loop, knots, gpu_id, now):
    loop.schedule(5.0, handler)
    loop.schedule_at(loop.now + 10.0, handler)
    window = knots.memory_window(gpu_id, now)
    values = window.values.copy()     # private copy is fair game
    values[0] = 0.0
    values.sort()
    return values
