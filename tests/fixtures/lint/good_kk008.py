"""KK008 fixture: threads hand work over a queue; loop-side code schedules."""

import threading


class Heartbeat:
    def __init__(self, loop, queue):
        self.loop = loop
        self.queue = queue

    def start(self):
        # Scheduling from the owning (loop-side) thread is fine.
        self.loop.schedule(1_000.0, self._drain)
        threading.Thread(target=self._feed, daemon=True).start()

    def _feed(self):
        self.queue.offer("tick")   # hand-off through the admission queue
        self.loop.stop()           # sanctioned cross-thread API

    def _drain(self):
        for _ in self.queue.take_all():
            self.loop.schedule(1_000.0, self._drain)
