"""KK005 fixture: shared attribute written on both sides, no lock."""

import threading


class Pump:
    def __init__(self):
        self.running = False
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.running = True           # loop-side write, unlocked
        self._thread.start()

    def stop(self):
        self.running = False          # loop-side write, unlocked

    def _run(self):
        while True:
            if not self.running:
                self.running = False  # thread-side write, unlocked
                return
