"""KK001 fixture: the seeded/sim-clock spellings the rule must allow."""

import random

import numpy as np


def handler(event, loop, seed):
    now = loop.now                      # sim time, not wall time
    rng = np.random.default_rng(seed)   # seeded generator
    r = random.Random(seed)             # seeded instance
    return now, rng.random(), r.random()
