"""KK001 fixture: every nondeterminism source the rule must catch."""

import datetime
import random
import time

import numpy as np
from random import randint  # noqa: F401  (flagged at the import)


def handler(event):
    started = time.time()
    stamp = datetime.datetime.now()
    jitter = random.random()
    noise = np.random.rand(4)
    choice = random.choice([1, 2, 3])
    return started, stamp, jitter, noise, choice
