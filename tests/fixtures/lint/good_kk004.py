"""KK004 fixture: the None-default and frozen-config spellings."""

from dataclasses import dataclass


def submit(pods, queue=None, index=None):
    queue = [] if queue is None else queue
    index = {} if index is None else index
    queue.extend(pods)
    return queue, index


def _internal(scratch=[]):    # private helpers are out of scope
    return scratch


@dataclass(frozen=True)
class RetryConfig:
    attempts: int = 3
    backoff_ms: float = 100.0
