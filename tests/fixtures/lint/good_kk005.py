"""KK005 fixture: every cross-boundary write happens under one lock."""

import threading


class Pump:
    def __init__(self):
        self._lock = threading.Lock()
        self.running = False
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._run, daemon=True)
        with self._lock:
            self.running = True
        self._thread.start()

    def stop(self):
        with self._lock:
            self.running = False

    def _run(self):
        while True:
            with self._lock:
                if not self.running:
                    return
