"""KK002 fixture: seconds flowing into millisecond slots unconverted."""


def start(engine, job, deadline_ms, duration_s):
    engine.run(until_ms=duration_s)            # kw boundary crossing
    budget_ms = duration_s                     # assignment crossing
    elapsed = deadline_ms - duration_s         # mixed arithmetic
    late = deadline_ms < duration_s            # mixed comparison
    return budget_ms, elapsed, late
