"""KK008 fixture: a thread-side method schedules onto the event loop."""

import threading


class Heartbeat:
    def __init__(self, loop):
        self.loop = loop

    def start(self):
        threading.Thread(target=self._beat, daemon=True).start()

    def _beat(self):
        self.loop.schedule(1_000.0, self._beat)   # cross-thread loop mutation
