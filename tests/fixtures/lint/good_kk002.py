"""KK002 fixture: explicit conversions the rule must allow."""

from repro.units import ms_to_s, s_to_ms


def start(engine, job, deadline_ms, duration_s):
    engine.run(until_ms=duration_s * 1_000.0)     # inline conversion
    budget_ms = s_to_ms(duration_s)               # helper conversion
    elapsed_s = ms_to_s(deadline_ms) - duration_s
    late = deadline_ms < s_to_ms(duration_s)
    return budget_ms, elapsed_s, late
