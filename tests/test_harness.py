"""Tests for the shared tick-grid harness (:mod:`repro.sim.harness`)."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventLoop
from repro.sim.harness import (
    PHASE_FAULT,
    PHASE_HEARTBEAT,
    PHASE_QUANTUM,
    PHASE_REPAIR,
    FaultPlan,
    TickHarness,
    run_until_idle,
)


class _Fault:
    def __init__(self, at_ms: float, gpu_id: str, duration_ms: float) -> None:
        self.at_ms = at_ms
        self.gpu_id = gpu_id
        self.duration_ms = duration_ms


def make_harness(tick_ms: float = 10.0, horizon: float = 200.0):
    """A harness whose quantum records tick times; a tick-end chain (the
    last phase slot, like the simulator's bookkeeping hook) stops the
    loop once ``horizon`` is reached."""
    loop = EventLoop()
    ticks: list[float] = []
    harness = TickHarness(loop, tick_ms, ticks.append)
    harness.every_tick(lambda now: loop.stop() if now >= horizon else None, priority=99)
    return loop, harness, ticks


class TestTickHarness:
    def test_quantum_fires_on_grid_from_time_zero(self):
        loop, harness, ticks = make_harness(tick_ms=10.0, horizon=40.0)
        run_until_idle(loop)
        assert ticks == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_next_tick_and_last_tick_bracket_now(self):
        loop, harness, _ = make_harness()
        seen = []
        loop.schedule_at(15.0, lambda: seen.append((harness.last_tick, harness.next_tick)))
        loop.schedule_at(16.0, loop.stop)
        run_until_idle(loop)
        assert seen == [(10.0, 20.0)]

    def test_on_grid_true_at_tick_instants_only(self):
        loop, harness, _ = make_harness()
        probes = []
        # Priority below the quantum's: fires before this tick's quantum.
        loop.schedule_at(20.0, lambda: probes.append(harness.on_grid(20.0)), priority=0)
        # And after the quantum, via a later phase slot.
        loop.schedule_at(20.0, lambda: probes.append(harness.on_grid(20.0)), priority=9)
        loop.schedule_at(25.0, lambda: probes.append(harness.on_grid(25.0)))
        loop.schedule_at(26.0, loop.stop)
        run_until_idle(loop)
        assert probes == [True, True, False]

    def test_skip_to_moves_every_per_tick_chain(self):
        """Skipping from the last phase of a tick (like the simulator's
        end-of-tick hook) jumps every chain to the target tick after
        all of the current tick's phases have run."""
        loop = EventLoop()
        ticks, records = [], []

        def tick_end(now: float) -> None:
            if now == 20.0:
                harness.skip_to(100.0)
            if now >= 110.0:
                loop.stop()

        harness = TickHarness(loop, 10.0, ticks.append)
        harness.every_tick(records.append, priority=5)
        harness.every_tick(tick_end, priority=9)
        run_until_idle(loop)
        assert ticks == [0.0, 10.0, 20.0, 100.0, 110.0]
        assert records == [0.0, 10.0, 20.0, 100.0, 110.0]


class TestGridPeriodic:
    def test_interval_multiple_of_tick_fires_each_due_tick(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=60.0)
        beats = []
        harness.periodic(20.0, beats.append, priority=PHASE_HEARTBEAT)
        run_until_idle(loop)
        assert beats == [0.0, 20.0, 40.0, 60.0]

    def test_off_grid_interval_lands_on_first_tick_after_due(self):
        """interval=25 on a 10ms grid: due times 0, 25, 50, ... execute
        at ticks 0, 30, 60 ... — `next_due = executed + interval`,
        exactly the old `if t >= next_due` bookkeeping."""
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=120.0)
        beats = []
        harness.periodic(25.0, beats.append, priority=PHASE_HEARTBEAT)
        run_until_idle(loop)
        assert beats == [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_resync_reaims_after_skip(self):
        loop = EventLoop()
        beats = []

        def tick_end(now: float) -> None:
            if now == 20.0:
                harness.skip_to(100.0)
                hb.resync(120.0)
            if now >= 130.0:
                loop.stop()

        harness = TickHarness(loop, 10.0, lambda now: None)
        harness.every_tick(tick_end, priority=99)
        hb = harness.periodic(20.0, beats.append, priority=PHASE_HEARTBEAT)
        run_until_idle(loop)
        assert beats == [0.0, 20.0, 120.0]

    def test_cancel_stops_execution(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=50.0)
        beats = []
        hb = harness.periodic(10.0, beats.append, priority=PHASE_HEARTBEAT)
        loop.schedule_at(25.0, hb.cancel)
        run_until_idle(loop)
        assert beats == [0.0, 10.0, 20.0]


class TestGridOneShot:
    def test_raw_time_defers_to_next_tick(self):
        loop, harness, ticks = make_harness(tick_ms=10.0, horizon=40.0)
        hits = []
        harness.at(13.0, lambda: hits.append(loop.now), priority=PHASE_FAULT)
        run_until_idle(loop)
        assert hits == [20.0]

    def test_on_grid_time_fires_at_that_tick(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=40.0)
        hits = []
        harness.at(20.0, lambda: hits.append(loop.now), priority=PHASE_FAULT)
        run_until_idle(loop)
        assert hits == [20.0]

    def test_cancel_before_fire(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=40.0)
        hits = []
        shot = harness.at(25.0, lambda: hits.append(loop.now), priority=PHASE_FAULT)
        loop.schedule_at(15.0, shot.cancel)
        run_until_idle(loop)
        assert hits == []
        assert not shot.pending


class TestFaultPlan:
    def test_fault_and_repair_fire_on_grid(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=100.0)
        log = []
        FaultPlan(
            harness,
            [_Fault(13.0, "g0", 25.0)],
            fail_fn=lambda g: (log.append(("fail", g, loop.now)), True)[1],
            repair_fn=lambda g: log.append(("repair", g, loop.now)),
        )
        run_until_idle(loop)
        # Fault at raw 13 lands on tick 20; repair due at raw 38 lands on 40.
        assert log == [("fail", "g0", 20.0), ("repair", "g0", 40.0)]

    def test_swallowed_fault_schedules_no_repair(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=100.0)
        log = []
        plan = FaultPlan(
            harness,
            [_Fault(10.0, "g0", 30.0), _Fault(20.0, "g0", 5.0)],
            fail_fn=lambda g: (log.append(("fail", loop.now)), loop.now == 10.0)[1],
            repair_fn=lambda g: log.append(("repair", loop.now)),
        )
        run_until_idle(loop)
        assert log == [("fail", 10.0), ("fail", 20.0), ("repair", 40.0)]
        assert plan.pending == 0

    def test_cancel_repair_keeps_device_failed(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=100.0)
        log = []
        plan = FaultPlan(
            harness,
            [_Fault(10.0, "g0", 30.0)],
            fail_fn=lambda g: True,
            repair_fn=lambda g: log.append(("repair", loop.now)),
        )
        loop.schedule_at(25.0, plan.cancel_repair, "g0")
        run_until_idle(loop)
        assert log == []
        assert not plan.repair_pending("g0")
        assert plan.cancel_repair("g0") is False  # idempotent

    def test_pending_counts_unfired_events(self):
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=100.0)
        plan = FaultPlan(
            harness,
            [_Fault(10.0, "g0", 1000.0), _Fault(30.0, "g1", 1000.0)],
            fail_fn=lambda g: True,
            repair_fn=lambda g: None,
        )
        counts = []
        loop.schedule_at(5.0, lambda: counts.append(plan.pending), priority=9)
        loop.schedule_at(35.0, lambda: counts.append(plan.pending), priority=9)
        run_until_idle(loop)
        # Before any fault: 2 faults pending.  After both applied: the
        # two (still-future, beyond-horizon) repairs are pending.
        assert counts == [2, 2]

    def test_same_tick_fault_then_repair_order(self):
        """A zero-duration fault repairs at the same tick: the repair's
        PHASE_REPAIR slot fires after the fault's PHASE_FAULT slot."""
        loop, harness, _ = make_harness(tick_ms=10.0, horizon=60.0)
        log = []
        FaultPlan(
            harness,
            [_Fault(20.0, "g0", 0.0)],
            fail_fn=lambda g: (log.append("fail"), True)[1],
            repair_fn=lambda g: log.append("repair"),
        )
        run_until_idle(loop)
        assert log == ["fail", "repair"]
        assert PHASE_FAULT < PHASE_REPAIR < PHASE_QUANTUM


def test_run_until_idle_returns_events_fired():
    loop = EventLoop()
    for i in range(5):
        loop.schedule(float(i), lambda: None)
    assert run_until_idle(loop) == 5
