"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, fired.append, "late")
    loop.schedule(1.0, fired.append, "early")
    loop.schedule(3.0, fired.append, "middle")
    loop.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_fifo():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(1.0, fired.append, i)
    loop.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_run_until_stops_before_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(10.0, fired.append, "b")
    n = loop.run(until=5.0)
    assert n == 1
    assert fired == ["a"]
    assert loop.now == 5.0  # clock advanced to the boundary
    loop.run()
    assert fired == ["a", "b"]


def test_schedule_in_past_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)
    loop.schedule(5.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(1.0, lambda: None)


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(1.0, fired.append, "cancelled")
    loop.schedule(2.0, fired.append, "kept")
    handle.cancel()
    assert handle.cancelled
    loop.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.run() == 0


def test_events_scheduled_during_run_fire():
    loop = EventLoop()
    fired = []

    def chain(depth: int) -> None:
        fired.append(depth)
        if depth < 3:
            loop.schedule(1.0, chain, depth + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(100):
        loop.schedule(float(i), fired.append, i)
    assert loop.run(max_events=10) == 10
    assert len(fired) == 10


def test_len_counts_pending_non_cancelled():
    loop = EventLoop()
    handles = [loop.schedule(float(i), lambda: None) for i in range(5)]
    handles[0].cancel()
    assert len(loop) == 4


def test_step_returns_false_when_empty():
    loop = EventLoop()
    assert loop.step() is False


def test_reentrant_run_rejected():
    loop = EventLoop()

    def nested():
        with pytest.raises(SimulationError):
            loop.run()

    loop.schedule(1.0, nested)
    loop.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_arbitrary_schedules_fire_sorted(delays):
    loop = EventLoop()
    fired = []
    for d in delays:
        loop.schedule(d, lambda t=d: fired.append(t))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


def test_len_tracks_schedule_cancel_fire_sequence():
    """The live pending counter survives interleaved cancels and fires."""
    loop = EventLoop()
    handles = [loop.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert len(loop) == 5
    handles[1].cancel()
    handles[3].cancel()
    assert len(loop) == 3
    assert loop.step() is True      # fires t=1
    assert len(loop) == 2
    assert loop.step() is True      # skips cancelled t=2, fires t=3
    assert loop.now == 3.0
    assert len(loop) == 1
    loop.run()
    assert len(loop) == 0


def test_cancel_after_fire_does_not_corrupt_count():
    """Cancelling a handle whose event already fired must be a no-op —
    in particular it must not decrement the pending count again."""
    loop = EventLoop()
    fired = []
    early = loop.schedule(1.0, fired.append, "early")
    loop.schedule(2.0, fired.append, "late")
    loop.step()                     # "early" fires
    assert fired == ["early"]
    early.cancel()                  # too late: no effect
    assert not early.cancelled
    assert len(loop) == 1
    loop.run()
    assert fired == ["early", "late"]
    assert len(loop) == 0


def test_double_cancel_decrements_once():
    loop = EventLoop()
    keep = loop.schedule(2.0, lambda: None)
    victim = loop.schedule(1.0, lambda: None)
    victim.cancel()
    victim.cancel()
    assert len(loop) == 1
    assert loop.run() == 1
    assert len(loop) == 0


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
def test_len_matches_heap_survivors(plan):
    """len(loop) equals a brute-force count of live events at every point."""
    loop = EventLoop()
    handles = []
    for delay, _ in plan:
        handles.append(loop.schedule(delay, lambda: None))
    for handle, (_, cancel) in zip(handles, plan):
        if cancel:
            handle.cancel()
    live = sum(1 for h, (_, cancel) in zip(handles, plan) if not cancel)
    assert len(loop) == live
    fired = loop.run()
    assert fired == live
    assert len(loop) == 0

# -- same-instant priorities --------------------------------------------------


def test_priority_orders_same_instant_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "late-phase", priority=7)
    loop.schedule(1.0, fired.append, "early-phase", priority=0)
    loop.schedule(1.0, fired.append, "mid-phase", priority=3)
    loop.run()
    assert fired == ["early-phase", "mid-phase", "late-phase"]


def test_equal_priority_same_instant_is_fifo():
    loop = EventLoop()
    fired = []
    for i in range(8):
        loop.schedule(2.0, fired.append, i, priority=4)
    loop.run()
    assert fired == list(range(8))


def test_priority_does_not_override_time():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, fired.append, "later", priority=0)
    loop.schedule(1.0, fired.append, "earlier", priority=9)
    loop.run()
    assert fired == ["earlier", "later"]


# -- stop() -------------------------------------------------------------------


def test_stop_halts_run_and_keeps_pending_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(2.0, lambda: (fired.append("b"), loop.stop()))
    loop.schedule(3.0, fired.append, "c")
    n = loop.run()
    assert n == 2
    assert fired == ["a", "b"]
    assert len(loop) == 1           # "c" stays queued
    assert loop.run() == 1          # a fresh run drains it
    assert fired == ["a", "b", "c"]


def test_stop_request_cleared_on_run_entry():
    loop = EventLoop()
    loop.stop()                     # stale request before run()
    fired = []
    loop.schedule(1.0, fired.append, "x")
    assert loop.run() == 1
    assert fired == ["x"]


# -- every() / RepeatingEvent -------------------------------------------------


def test_every_fires_on_interval_grid():
    loop = EventLoop()
    ticks = []
    rep = loop.every(10.0, ticks.append, start_at=0.0)
    loop.schedule(35.0, loop.stop)
    loop.run()
    assert ticks == [0.0, 10.0, 20.0, 30.0]
    assert rep.next_time == 40.0


def test_every_default_start_is_one_interval_out():
    loop = EventLoop()
    ticks = []
    loop.every(5.0, ticks.append)
    loop.schedule(11.0, loop.stop)
    loop.run()
    assert ticks == [5.0, 10.0]


def test_repeating_cancel_stops_recurrence():
    loop = EventLoop()
    ticks = []
    rep = loop.every(1.0, ticks.append, start_at=1.0)
    loop.schedule(3.5, rep.cancel)
    loop.run()
    assert ticks == [1.0, 2.0, 3.0]
    assert rep.cancelled
    assert len(loop) == 0


def test_repeating_skip_to_from_within_callback():
    """skip_to must be callable from inside the callback: the next
    occurrence is pre-scheduled before the callback runs, and skip_to
    replaces it."""
    loop = EventLoop()
    ticks = []

    def tick(now: float) -> None:
        ticks.append(now)
        if now == 2.0:
            rep.skip_to(10.0)
        if now >= 11.0:
            loop.stop()

    rep = loop.every(1.0, tick, start_at=1.0)
    loop.run()
    assert ticks == [1.0, 2.0, 10.0, 11.0]


def test_repeating_skip_to_after_cancel_rejected():
    loop = EventLoop()
    rep = loop.every(1.0, lambda now: None)
    rep.cancel()
    with pytest.raises(SimulationError):
        rep.skip_to(5.0)


def test_every_rejects_non_positive_interval():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.every(0.0, lambda now: None)
    with pytest.raises(SimulationError):
        loop.every(-1.0, lambda now: None)


# -- obs clock scaling --------------------------------------------------------


def test_clock_scale_stamps_obs_clock_in_ms():
    from repro.obs.context import Observability

    obs = Observability(trace=True)
    loop = EventLoop(obs=obs, clock_scale=1000.0)   # loop runs in seconds
    stamped = []
    loop.schedule(2.5, lambda: stamped.append(obs.clock.now))
    loop.run()
    assert stamped == [2500.0]


def test_events_fired_counter_increments():
    from repro.obs.context import Observability

    obs = Observability(trace=True)
    loop = EventLoop(obs=obs)
    for i in range(4):
        loop.schedule(float(i), lambda: None)
    loop.run()
    assert obs.metrics.get("engine_events_fired_total").value() == 4.0


# -- stop hooks / paced running ----------------------------------------------


def test_stop_is_idempotent_and_runs_hooks_each_time():
    loop = EventLoop()
    calls = []
    loop.add_stop_hook(lambda: calls.append("hook"))
    loop.stop()
    loop.stop()   # double-stop must not raise
    assert loop.stop_requested
    assert calls == ["hook", "hook"]


def test_stop_before_run_paced_halts_immediately():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "never")
    loop.stop()
    # A stop requested before pacing begins is honoured (unlike run(),
    # which resets the flag so pre-existing tests keep their semantics).
    assert loop.run_paced(lambda when: None) == 0
    assert fired == []


def test_run_paced_fires_in_order_and_reports_times_to_pacer():
    loop = EventLoop()
    fired, paced = [], []
    loop.schedule(2.0, fired.append, "b")
    loop.schedule(1.0, fired.append, "a")
    n = loop.run_paced(paced.append)
    assert n == 2
    assert fired == ["a", "b"]
    assert paced == [1.0, 2.0]


def test_run_paced_rejects_reentrancy():
    loop = EventLoop()

    def reenter():
        with pytest.raises(SimulationError):
            loop.run_paced(lambda when: None)

    loop.schedule(1.0, reenter)
    loop.run_paced(lambda when: None)


def test_cross_thread_stop_wakes_a_sleeping_pacer():
    """The serving shutdown path: SIGINT lands on another thread while
    the pacer is blocked waiting for the next event's wall time."""
    import threading

    loop = EventLoop()
    woken = threading.Event()
    entered = threading.Event()

    def pacer(when: float) -> None:
        entered.set()
        # Block until stop() (from the other thread) sets the event;
        # a hung test here means the stop hook never fired.
        assert woken.wait(timeout=30.0)

    loop.add_stop_hook(woken.set)
    loop.schedule(1.0, lambda: None)
    stopper = threading.Thread(target=lambda: (entered.wait(30.0), loop.stop()))
    stopper.start()
    fired = loop.run_paced(pacer)
    stopper.join(timeout=30.0)
    assert not stopper.is_alive()
    # The head event was paced, then the stop was observed before firing.
    assert fired == 0
    assert loop.stop_requested
