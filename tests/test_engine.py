"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import EventLoop, SimulationError


def test_events_fire_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule(5.0, fired.append, "late")
    loop.schedule(1.0, fired.append, "early")
    loop.schedule(3.0, fired.append, "middle")
    loop.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_fifo():
    loop = EventLoop()
    fired = []
    for i in range(10):
        loop.schedule(1.0, fired.append, i)
    loop.run()
    assert fired == list(range(10))


def test_clock_advances_to_event_time():
    loop = EventLoop()
    seen = []
    loop.schedule(2.5, lambda: seen.append(loop.now))
    loop.run()
    assert seen == [2.5]
    assert loop.now == 2.5


def test_run_until_stops_before_future_events():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, fired.append, "a")
    loop.schedule(10.0, fired.append, "b")
    n = loop.run(until=5.0)
    assert n == 1
    assert fired == ["a"]
    assert loop.now == 5.0  # clock advanced to the boundary
    loop.run()
    assert fired == ["a", "b"]


def test_schedule_in_past_rejected():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda: None)
    loop.schedule(5.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(1.0, lambda: None)


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    handle = loop.schedule(1.0, fired.append, "cancelled")
    loop.schedule(2.0, fired.append, "kept")
    handle.cancel()
    assert handle.cancelled
    loop.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    loop = EventLoop()
    handle = loop.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert loop.run() == 0


def test_events_scheduled_during_run_fire():
    loop = EventLoop()
    fired = []

    def chain(depth: int) -> None:
        fired.append(depth)
        if depth < 3:
            loop.schedule(1.0, chain, depth + 1)

    loop.schedule(0.0, chain, 0)
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_max_events_bounds_execution():
    loop = EventLoop()
    fired = []
    for i in range(100):
        loop.schedule(float(i), fired.append, i)
    assert loop.run(max_events=10) == 10
    assert len(fired) == 10


def test_len_counts_pending_non_cancelled():
    loop = EventLoop()
    handles = [loop.schedule(float(i), lambda: None) for i in range(5)]
    handles[0].cancel()
    assert len(loop) == 4


def test_step_returns_false_when_empty():
    loop = EventLoop()
    assert loop.step() is False


def test_reentrant_run_rejected():
    loop = EventLoop()

    def nested():
        with pytest.raises(SimulationError):
            loop.run()

    loop.schedule(1.0, nested)
    loop.run()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_arbitrary_schedules_fire_sorted(delays):
    loop = EventLoop()
    fired = []
    for d in delays:
        loop.schedule(d, lambda t=d: fired.append(t))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


def test_len_tracks_schedule_cancel_fire_sequence():
    """The live pending counter survives interleaved cancels and fires."""
    loop = EventLoop()
    handles = [loop.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert len(loop) == 5
    handles[1].cancel()
    handles[3].cancel()
    assert len(loop) == 3
    assert loop.step() is True      # fires t=1
    assert len(loop) == 2
    assert loop.step() is True      # skips cancelled t=2, fires t=3
    assert loop.now == 3.0
    assert len(loop) == 1
    loop.run()
    assert len(loop) == 0


def test_cancel_after_fire_does_not_corrupt_count():
    """Cancelling a handle whose event already fired must be a no-op —
    in particular it must not decrement the pending count again."""
    loop = EventLoop()
    fired = []
    early = loop.schedule(1.0, fired.append, "early")
    loop.schedule(2.0, fired.append, "late")
    loop.step()                     # "early" fires
    assert fired == ["early"]
    early.cancel()                  # too late: no effect
    assert not early.cancelled
    assert len(loop) == 1
    loop.run()
    assert fired == ["early", "late"]
    assert len(loop) == 0


def test_double_cancel_decrements_once():
    loop = EventLoop()
    keep = loop.schedule(2.0, lambda: None)
    victim = loop.schedule(1.0, lambda: None)
    victim.cancel()
    victim.cancel()
    assert len(loop) == 1
    assert loop.run() == 1
    assert len(loop) == 0


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
def test_len_matches_heap_survivors(plan):
    """len(loop) equals a brute-force count of live events at every point."""
    loop = EventLoop()
    handles = []
    for delay, _ in plan:
        handles.append(loop.schedule(delay, lambda: None))
    for handle, (_, cancel) in zip(handles, plan):
        if cancel:
            handle.cancel()
    live = sum(1 for h, (_, cancel) in zip(handles, plan) if not cancel)
    assert len(loop) == live
    fired = loop.run()
    assert fired == live
    assert len(loop) == 0
