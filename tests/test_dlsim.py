"""Tests for the DL-cluster simulator and its four policies."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.sim.dlsim import (
    DLClusterSimulator,
    make_dl_policy,
    run_dl_comparison,
)
from repro.workloads.dlt import DLJob, DLJobKind, DLWorkloadConfig, generate_dl_workload

SMALL = DLWorkloadConfig(
    n_training=40, n_inference=120, window_s=3_600.0, dlt_median_s=1_200.0, dlt_sigma=0.8
)


def job(kind, arrival, gpus, service, job_id=0, qos=None):
    return DLJob(job_id, kind, arrival, gpus, service, qos_threshold_s=qos)


def run(jobs, policy_name, n_nodes=1, gpus_per_node=4, **kwargs):
    jobs = copy.deepcopy(jobs)
    sim = DLClusterSimulator(jobs, make_dl_policy(policy_name, **kwargs),
                             n_nodes=n_nodes, gpus_per_node=gpus_per_node)
    return sim.run(), jobs


class TestResAg:
    def test_gang_hol_blocking(self):
        """A big gang at the head blocks a small gang behind it."""
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 100.0, 0),   # fills the cluster
            job(DLJobKind.TRAINING, 1.0, 4, 10.0, 1),    # head: cannot fit
            job(DLJobKind.TRAINING, 2.0, 1, 10.0, 2),    # stuck behind head
        ]
        result, jobs = run(jobs, "res-ag")
        assert jobs[1].start_s == pytest.approx(100.0)
        assert jobs[2].start_s >= jobs[1].start_s   # strict FIFO

    def test_inference_shares_blindly(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 1, 100.0, 0),
            job(DLJobKind.INFERENCE, 1.0, 1, 0.05, 1, qos=0.15),
            job(DLJobKind.INFERENCE, 1.0, 1, 0.05, 2, qos=0.15),
        ]
        result, jobs = run(jobs, "res-ag")
        # both queries start immediately (shared slots), stretched by
        # co-residency with the trainer and each other
        assert jobs[1].start_s == pytest.approx(1.0, abs=0.01)
        assert jobs[1].jct_s > 0.05


class TestGandiva:
    def test_oversubscription_starts_jobs_immediately(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 100.0, 0),
            job(DLJobKind.TRAINING, 1.0, 4, 100.0, 1),
        ]
        result, jobs = run(jobs, "gandiva")
        assert jobs[1].start_s == pytest.approx(1.0)
        # time-slicing stretches both
        assert jobs[0].jct_s > 150.0

    def test_migration_moves_job_to_idle_devices(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 2, 2_000.0, 0),
            job(DLJobKind.TRAINING, 1.0, 2, 2_000.0, 1),
        ]
        # 8 GPUs: least-loaded placement spreads them; force overlap on
        # a 2-GPU cluster instead
        result, jobs = run(jobs, "gandiva", n_nodes=1, gpus_per_node=2,
                           migration_interval_s=100.0)
        # after one job completes, the other should end up unshared;
        # both complete despite oversubscription
        assert all(j.finish_s is not None for j in jobs)

    def test_respects_share_cap(self):
        jobs = [job(DLJobKind.TRAINING, float(i), 2, 500.0, i) for i in range(4)]
        result, jobs = run(jobs, "gandiva", n_nodes=1, gpus_per_node=2, max_share=2)
        running_starts = sorted(j.start_s for j in jobs)
        assert running_starts[2] > 1.0   # third job had to wait for a slot


class TestTiresias:
    def test_preempts_long_running_for_newcomer(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 50_000.0, 0),  # demotes to Q1
            job(DLJobKind.TRAINING, 20_000.0, 4, 100.0, 1),
        ]
        result, jobs = run(jobs, "tiresias")
        assert jobs[0].preemptions >= 1
        assert jobs[1].start_s == pytest.approx(20_000.0, abs=1.0)

    def test_inference_preempts_quickly(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 50_000.0, 0),
            job(DLJobKind.INFERENCE, 20_000.0, 1, 0.05, 1, qos=0.15),
        ]
        result, jobs = run(jobs, "tiresias")
        assert jobs[1].jct_s < 1.0

    def test_preemption_penalty_costs_work(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 50_000.0, 0),
            job(DLJobKind.TRAINING, 10_000.0, 4, 100.0, 1),
        ]
        result, jobs = run(jobs, "tiresias")
        assert jobs[0].jct_s > 50_000.0 + 100.0


class TestCbpPp:
    def test_backfill_skips_blocked_head(self):
        jobs = [
            job(DLJobKind.TRAINING, 0.0, 4, 100.0, 0),
            job(DLJobKind.TRAINING, 1.0, 4, 10.0, 1),    # cannot fit yet
            job(DLJobKind.TRAINING, 2.0, 1, 10.0, 2),    # backfills? no free gpu
        ]
        result, jobs = run(jobs, "cbp-pp", gpus_per_node=5)
        # 5 GPUs: the 1-GPU job backfills around the waiting 4-gang
        assert jobs[2].start_s == pytest.approx(2.0, abs=0.01)

    def test_inference_colocates_without_queueing(self):
        jobs = [job(DLJobKind.TRAINING, 0.0, 4, 1_000.0, 0)] + [
            job(DLJobKind.INFERENCE, 1.0, 1, 0.05, i + 1, qos=0.15) for i in range(4)
        ]
        result, jobs = run(jobs, "cbp-pp")
        for j in jobs[1:]:
            assert j.start_s == pytest.approx(1.0, abs=0.01)
            assert not j.violates_qos()

    def test_colocation_cap_respected(self):
        jobs = [job(DLJobKind.TRAINING, 0.0, 4, 1_000.0, 0)] + [
            job(DLJobKind.INFERENCE, 1.0, 1, 10.0, i + 1, qos=100.0) for i in range(10)
        ]
        result, jobs = run(jobs, "cbp-pp", max_dli_per_gpu=2)
        started_at_1 = [j for j in jobs[1:] if j.start_s == pytest.approx(1.0, abs=0.01)]
        assert len(started_at_1) == 8   # 4 GPUs x 2 slots


class TestComparison:
    def test_all_policies_finish_everything(self):
        jobs = generate_dl_workload(SMALL, seed=5)
        for name in ("res-ag", "gandiva", "tiresias", "cbp-pp"):
            jobs_copy = copy.deepcopy(jobs)
            result = DLClusterSimulator(jobs_copy, make_dl_policy(name),
                                        n_nodes=4, gpus_per_node=8).run()
            unfinished = [j for j in jobs_copy if j.finish_s is None]
            assert not unfinished, f"{name} left {len(unfinished)} jobs"

    def test_cbp_pp_best_average_jct(self):
        results = run_dl_comparison(jobs_seed=3, config=SMALL)
        means = {name: r.jcts_s().mean() for name, r in results.items()}
        assert means["cbp-pp"] <= min(means.values()) * 1.001

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_dl_policy("slurm")


class TestLocality:
    def test_compact_placement_prefers_one_node(self):
        from repro.sim.dlsim import _Pool

        pool = _Pool(16, gpus_per_node=8)
        pool.take([0, 1, 2, 3])            # node 0 half full
        gpus = pool.take_compact(4)
        # node 0 has 4 free, node 1 has 8: greedy fill picks node 1
        assert pool.nodes_spanned(gpus) == 1
        assert all(pool.node_of(g) == 1 for g in gpus)

    def test_compact_placement_spans_when_forced(self):
        from repro.sim.dlsim import _Pool

        pool = _Pool(16, gpus_per_node=8)
        pool.take([0, 1, 2, 3, 8, 9])      # node0: 4 free, node1: 6 free
        gpus = pool.take_compact(8)
        assert gpus is not None and len(gpus) == 8
        assert pool.nodes_spanned(gpus) == 2

    def test_insufficient_capacity_returns_none(self):
        from repro.sim.dlsim import _Pool

        pool = _Pool(4, gpus_per_node=4)
        pool.take([0, 1, 2])
        assert pool.take_compact(2) is None

    def test_locality_penalty_slows_cross_node_gangs(self):
        jobs = [job(DLJobKind.TRAINING, 0.0, 12, 1_000.0, 0)]   # must span 2 nodes
        free_run, jobs_a = run(jobs, "cbp-pp", n_nodes=2, gpus_per_node=8)
        taxed = copy.deepcopy([job(DLJobKind.TRAINING, 0.0, 12, 1_000.0, 0)])
        sim = DLClusterSimulator(taxed, make_dl_policy("cbp-pp"),
                                 n_nodes=2, gpus_per_node=8, locality_penalty=0.1)
        sim.run()
        assert taxed[0].jct_s > jobs_a[0].jct_s

    def test_single_node_gang_unaffected_by_penalty(self):
        jobs = [job(DLJobKind.TRAINING, 0.0, 4, 1_000.0, 0)]
        taxed = copy.deepcopy(jobs)
        sim = DLClusterSimulator(taxed, make_dl_policy("cbp-pp"),
                                 n_nodes=2, gpus_per_node=8, locality_penalty=0.5)
        sim.run()
        assert taxed[0].jct_s == pytest.approx(1_000.0, abs=1.0)
