"""End-to-end observability: a real simulation run feeds all three sinks."""

from __future__ import annotations

import json

import pytest

from repro.core.schedulers import PeakPredictionScheduler
from repro.obs.context import NOOP, Observability
from repro.sim.engine import EventLoop
from repro.sim.simulator import run_appmix


@pytest.fixture(scope="module")
def traced_run():
    obs = Observability()
    result = run_appmix(
        "app-mix-1", PeakPredictionScheduler(), duration_s=3.0, seed=2,
        num_nodes=3, obs=obs,
    )
    return obs, result


class TestTraceFromRun:
    def test_duration_spans_balance(self, traced_run):
        obs, _ = traced_run
        assert obs.tracer.depth == 0
        begins = sum(1 for ev in obs.tracer.events if ev["ph"] == "B")
        ends = sum(1 for ev in obs.tracer.events if ev["ph"] == "E")
        assert begins == ends > 0

    def test_pod_async_spans_close_for_completed_pods(self, traced_run):
        obs, result = traced_run
        opened = {ev["id"] for ev in obs.tracer.events if ev["ph"] == "b"}
        closed = {ev["id"] for ev in obs.tracer.events if ev["ph"] == "e"}
        done = {p.uid for p in result.completed()}
        assert done <= opened
        assert done <= closed

    def test_timestamps_are_monotone_sim_time(self, traced_run):
        obs, result = traced_run
        ts = [ev["ts"] for ev in obs.tracer.events]
        assert ts == sorted(ts)
        assert ts[-1] <= result.makespan_ms

    def test_counter_tracks_present(self, traced_run):
        obs, _ = traced_run
        names = {ev["name"] for ev in obs.tracer.events if ev["ph"] == "C"}
        assert {"cluster_utilization", "cluster_power_w", "pending_pods"} <= names

    def test_chrome_export_loads(self, traced_run, tmp_path):
        obs, _ = traced_run
        path = tmp_path / "run.trace.json"
        n = obs.tracer.to_chrome(path)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == n == len(obs.tracer)
        phases = {ev["ph"] for ev in payload["traceEvents"]}
        assert phases <= {"B", "E", "i", "b", "e", "C"}


class TestMetricsFromRun:
    def test_core_series_populated(self, traced_run):
        obs, result = traced_run
        m = obs.metrics
        assert m.get("scheduler_passes_total").value() > 0
        assert m.get("knots_heartbeats_total").value() > 0
        assert m.get("pods_completed_total").value() == len(result.completed())
        assert m.get("pods_oom_killed_total").value() == result.oom_kills
        assert m.get("pod_resizes_total").value() == result.resizes
        wait = m.get("pod_queue_wait_ms")
        assert wait.count() == m.get("pods_admitted_total").value()

    def test_prometheus_exposition(self, traced_run):
        obs, _ = traced_run
        text = obs.metrics.render()
        assert "# TYPE scheduler_passes_total counter" in text
        assert "# TYPE pod_queue_wait_ms histogram" in text
        assert 'pod_queue_wait_ms_bucket{le="+Inf"}' in text


class TestObservabilityBundle:
    def test_export_writes_all_requested_sinks(self, traced_run, tmp_path):
        obs, _ = traced_run
        written = obs.export(
            trace_path=tmp_path / "t.json",
            metrics_path=tmp_path / "m.prom",
            audit_path=tmp_path / "a.jsonl",
        )
        assert written["trace_events"] == len(obs.tracer)
        assert written["metrics"] == len(obs.metrics.names())
        assert written["audit_records"] == len(obs.audit)
        assert (tmp_path / "m.prom").read_text() == obs.metrics.render()

    def test_partial_export(self, traced_run, tmp_path):
        obs, _ = traced_run
        written = obs.export(metrics_path=tmp_path / "only.prom")
        assert set(written) == {"metrics"}

    def test_noop_bundle_is_disabled(self):
        assert NOOP.enabled is False
        assert NOOP.tracer.enabled is False
        assert NOOP.metrics.enabled is False
        assert NOOP.audit.enabled is False

    def test_selectively_disabled_sinks(self):
        obs = Observability(trace=False, metrics=True, audit=False)
        assert obs.enabled
        assert not obs.tracer.enabled
        assert obs.metrics.enabled
        assert not obs.audit.enabled


class TestEngineInstrumentation:
    def test_fired_events_counted_and_traced(self):
        obs = Observability()
        loop = EventLoop(obs=obs)
        loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert obs.metrics.get("engine_events_fired_total").value() == 2
        spans = [ev for ev in obs.tracer.events if ev["ph"] in ("B", "E")]
        assert len(spans) == 4
        assert obs.clock.now == 2.0

    def test_disabled_obs_leaves_no_trace(self):
        loop = EventLoop()        # defaults to NOOP
        loop.schedule(1.0, lambda: None)
        loop.run()
        assert len(NOOP.tracer) == 0
        assert NOOP.metrics.render() == ""
