"""Tests for the experiment harness (figure regeneration).

These use small settings so the whole module runs in tens of seconds;
the headline *shape* assertions (who wins, direction of effects) are
the reproduction's acceptance tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig1, fig2, fig3, fig4, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table4
from repro.experiments.runner import ExperimentSettings, mix_run
from repro.workloads.dlt import DLWorkloadConfig

QUICK = ExperimentSettings(duration_s=6.0, seed=1)
DL_QUICK = DLWorkloadConfig(
    n_training=60, n_inference=200, window_s=3_600.0, dlt_median_s=2_500.0, dlt_sigma=0.9
)


class TestStaticFigures:
    def test_fig1_gpu_linear_cpu_interior_peak(self):
        data = fig1.run_fig1()
        gpu = data["GPU"]
        assert np.all(np.diff(gpu) > 0)            # linear EE: always rising
        sandy = data["Intel-Sandybridge"]
        assert sandy.max() > sandy[-1]             # interior peak above u=1 value
        assert 0.55 <= data["sandybridge_peak_util"] <= 0.85

    def test_fig2_correlation_structure(self):
        data = fig2.run_fig2(n_latency=2_000, n_batch=2_000)
        b_names, b = data["batch_metrics"], data["batch_corr"]
        core, mem = b_names.index("core_util"), b_names.index("mem_util")
        assert b[core][mem] > 0.6                  # strong batch correlation
        l_names, l = data["latency_metrics"], data["latency_corr"]
        off_diag = l[~np.eye(len(l_names), dtype=bool)]
        assert np.abs(off_diag).max() < 0.6        # weak latency correlations
        assert data["avg_cpu_mean"] == pytest.approx(0.47, abs=0.05)

    def test_fig3_shapes(self):
        data = fig3.run_fig3()
        assert len(data["per_app"]) == 8
        assert data["stats"]["bw_median_to_peak"] > 50
        assert data["stats"]["peak_residency_fraction"] < 0.2

    def test_fig4_memory_facts(self):
        data = fig4.run_fig4()
        assert data["single_query_max_pct"] < 10.0
        assert data["batch128_under_50pct"] == 6
        assert np.all(data["series"]["TF"] > 95.0)


class TestClusterFigures:
    def test_fig6_reports_all_nodes(self):
        data = fig6.run_fig6(settings=QUICK)
        assert set(data) == {"app-mix-1", "app-mix-2", "app-mix-3"}
        assert all(len(nodes) == 10 for nodes in data.values())

    def test_fig7_mix3_heaviest_tail(self):
        data = fig7.run_fig7(settings=QUICK)
        assert data["app-mix-3"].max() >= data["app-mix-1"].max() * 0.5

    def test_fig8_pp_beats_resag_median_mix1(self):
        res_ag = fig6.run_fig6(settings=QUICK)["app-mix-1"]
        pp = fig8.run_fig8(settings=QUICK)["app-mix-1"]
        busy = lambda d: np.mean([p.p50 for p in d.values() if p.max > 0])  # noqa: E731
        assert busy(pp) >= busy(res_ag) * 0.9

    def test_fig9_pp_highest_cluster_utilization(self):
        data = fig9.run_fig9(settings=QUICK)
        mix1 = data["app-mix-1"]
        assert mix1["peak-prediction"].p50 >= mix1["res-ag"].p50

    def test_fig10a_cbp_pp_low_violations_on_average(self):
        """Averaged over the mixes, the Knots schedulers violate least.

        Short runs have few queries, so a single violation moves a mix's
        per-kilo rate a lot; the averaged comparison is the stable
        acceptance criterion (full-length runs separate cleanly — see
        EXPERIMENTS.md).
        """
        data = fig10.run_fig10a(settings=QUICK)
        mean = lambda s: np.mean([data[m][s] for m in data])  # noqa: E731
        baseline_worst = max(mean("res-ag"), mean("uniform"))
        assert mean("cbp") <= baseline_worst + 35.0
        assert mean("peak-prediction") <= baseline_worst + 35.0

    def test_fig11a_sharing_saves_power(self):
        data = fig11.run_fig11a(settings=QUICK)
        for mix in data:
            assert data[mix]["uniform"] == pytest.approx(
                max(data[mix].values()), abs=1e-9
            )
            assert data[mix]["peak-prediction"] < data[mix]["uniform"]

    def test_fig11b_cov_matrix_shape(self):
        ids, mat = fig11.run_fig11b(settings=QUICK)
        assert len(ids) >= 2
        upper = mat[np.triu_indices(len(ids), k=1)]
        assert np.nanmax(upper) < 1.0


class TestPredictionAccuracy:
    def test_fig10b_rises_then_falls(self):
        data = fig10.run_fig10b(
            heartbeats_ms=(1000.0, 10.0, 0.1),
            forecasters=("arima",),
            max_windows=25,
        )
        acc = data["arima"]
        assert acc[10.0] > acc[1000.0]    # finer sampling resolves peaks
        assert acc[10.0] > acc[0.1]       # oversampling noise degrades


class TestDLFigures:
    def test_fig12_and_table4_ordering(self):
        results = fig12.dl_results(seed=2, config=DL_QUICK)
        ratios = table4.run_table4(seed=2, config=DL_QUICK)
        assert ratios["cbp-pp"] == pytest.approx((1.0, 1.0, 1.0))
        assert ratios["res-ag"][0] >= 1.0          # CBP+PP has the best average
        viol = fig12.run_fig12b(seed=2, config=DL_QUICK)
        assert viol["cbp-pp"] <= min(viol.values()) + 1e-9

    def test_fig12a_cdf_monotone(self):
        cdfs = fig12.run_fig12a(seed=2, config=DL_QUICK)
        for x, f in cdfs.values():
            assert np.all(np.diff(x) >= 0)
            assert np.all(np.diff(f) > 0)
