"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.mix == "app-mix-1"
        assert args.scheduler == "peak-prediction"
        assert args.nodes == 10

    def test_dlsim_policies(self):
        args = build_parser().parse_args(["dlsim", "--policies", "cbp-pp", "tiresias"])
        assert args.policies == ["cbp-pp", "tiresias"]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "peak-prediction" in out
        assert "app-mix-1" in out
        assert "gandiva" in out

    def test_experiment_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2

    def test_simulate_small(self, capsys):
        rc = main(
            ["simulate", "--mix", "app-mix-3", "--duration", "3", "--nodes", "3", "--seed", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pods completed" in out
        assert "mean cluster power" in out

    def test_experiments_registry_complete(self):
        # every experiment module listed by the CLI must import and
        # expose main()
        import importlib

        for name in EXPERIMENTS:
            mod = importlib.import_module(f"repro.experiments.{name}")
            assert callable(mod.main)

    def test_simulate_export(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        rc = main(
            ["simulate", "--mix", "app-mix-3", "--duration", "3", "--nodes", "2",
             "--export", str(out_file)]
        )
        assert rc == 0
        from repro.telemetry.export import import_result_series

        loaded = import_result_series(out_file)
        assert loaded["pods"]

    def test_replay_command(self, tmp_path, capsys):
        trace = tmp_path / "batch_task.csv"
        trace.write_text(
            "100,200,j_1,t_1,1,Terminated,600,4.0\n"
            "110,260,j_1,t_2,1,Terminated,1200,8.0\n"
        )
        rc = main(["replay", str(trace), "--nodes", "2", "--time-scale", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replayed tasks" in out

    def test_replay_empty_trace(self, tmp_path, capsys):
        trace = tmp_path / "batch_task.csv"
        trace.write_text("")
        assert main(["replay", str(trace)]) == 2
