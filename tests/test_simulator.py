"""End-to-end tests for the cluster simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator, SimConfig, run_appmix
from repro.workloads.appmix import generate_appmix_workload
from repro.workloads.base import QoSClass
from tests.conftest import make_spec


def tiny_workload(n_batch=3, n_lc=5):
    items = []
    t = 0.0
    for i in range(n_batch):
        items.append((t, make_spec(f"b{i}", image=f"img/b{i % 2}", duration_ms=300.0, mem_mb=2_000.0)))
        t += 50.0
    for i in range(n_lc):
        items.append(
            (t, make_spec(f"q{i}", image="img/q", duration_ms=40.0, mem_mb=500.0,
                          qos_threshold_ms=150.0))
        )
        t += 30.0
    return items


@pytest.mark.parametrize("name", ["uniform", "res-ag", "cbp", "peak-prediction"])
def test_all_schedulers_complete_tiny_workload(name):
    cluster = make_paper_cluster(num_nodes=3)
    sim = KubeKnotsSimulator(cluster, make_scheduler(name), tiny_workload())
    result = sim.run()
    assert len(result.completed()) == len(result.pods) == 8
    assert result.scheduler == name
    assert result.total_energy_j() > 0


def test_deterministic_given_seed():
    a = run_appmix("app-mix-3", make_scheduler("cbp"), duration_s=4.0, seed=7)
    b = run_appmix("app-mix-3", make_scheduler("cbp"), duration_s=4.0, seed=7)
    assert a.makespan_ms == b.makespan_ms
    assert a.total_energy_j() == pytest.approx(b.total_energy_j())
    assert sorted(p.jct_ms() for p in a.completed()) == sorted(p.jct_ms() for p in b.completed())


def test_different_seeds_differ():
    a = run_appmix("app-mix-3", make_scheduler("cbp"), duration_s=4.0, seed=7)
    b = run_appmix("app-mix-3", make_scheduler("cbp"), duration_s=4.0, seed=8)
    assert len(a.pods) != len(b.pods) or a.makespan_ms != b.makespan_ms


def test_result_series_aligned():
    result = run_appmix("app-mix-3", make_scheduler("peak-prediction"), duration_s=4.0, seed=1)
    n = len(result.sample_times_ms)
    for series in result.gpu_util_series.values():
        assert len(series) == n
    for series in result.gpu_mem_series.values():
        assert len(series) == n


def test_latency_pods_counted():
    result = run_appmix("app-mix-1", make_scheduler("peak-prediction"), duration_s=4.0, seed=1)
    lc = result.latency_pods()
    assert lc
    assert all(p.spec.qos_class is QoSClass.LATENCY_CRITICAL for p in lc)
    assert 0.0 <= result.qos_violations_per_kilo() <= 1_000.0


def test_cold_start_slower_than_prewarm():
    workload = tiny_workload()
    cluster_a = make_paper_cluster(num_nodes=3)
    warm = KubeKnotsSimulator(
        cluster_a, make_scheduler("cbp"), workload, SimConfig(prewarm_images=True)
    ).run()
    cluster_b = make_paper_cluster(num_nodes=3)
    cold = KubeKnotsSimulator(
        cluster_b, make_scheduler("cbp"), tiny_workload(), SimConfig(prewarm_images=False)
    ).run()
    assert np.median(cold.jcts_ms()) > np.median(warm.jcts_ms())


def test_horizon_bounds_runaway():
    """A pod that can never fit must not hang the simulation."""
    cluster = make_paper_cluster(num_nodes=1)
    impossible = make_spec("huge", mem_mb=16_384.0, requested_mem_mb=16_384.0)
    blocker = make_spec("other", mem_mb=16_384.0, requested_mem_mb=16_384.0)
    sim = KubeKnotsSimulator(
        cluster,
        make_scheduler("uniform"),
        [(0.0, impossible), (0.0, blocker)],
        SimConfig(min_horizon_ms=2_000.0, horizon_factor=1.0),
    )
    result = sim.run()
    assert result.makespan_ms <= 2_500.0


def test_appmix_workload_shapes():
    items = generate_appmix_workload("app-mix-1", duration_s=5.0, seed=0)
    times = [t for t, _ in items]
    assert times == sorted(times)
    classes = {spec.qos_class for _, spec in items}
    assert QoSClass.LATENCY_CRITICAL in classes and QoSClass.BATCH in classes
    lc_fraction = sum(
        1 for _, s in items if s.qos_class is QoSClass.LATENCY_CRITICAL
    ) / len(items)
    assert 0.6 < lc_fraction < 0.95   # the 80/20 Pareto split


def test_multi_gpu_nodes_end_to_end():
    """Nodes with several devices schedule and complete normally."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import GpuNode

    cluster = Cluster([GpuNode.build("node1", num_gpus=2), GpuNode.build("node2", num_gpus=2)])
    sim = KubeKnotsSimulator(cluster, make_scheduler("peak-prediction"), tiny_workload())
    result = sim.run()
    assert len(result.completed()) == len(result.pods)
    used_gpus = {p.gpu_id for p in result.pods}
    assert len(used_gpus) >= 2
