"""Tests for the serving layer: queue, SLO tracking, load generator,
the Knots service and the HTTP front door (e2e smoke)."""

from __future__ import annotations

import json
import math
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    OFFER_ACCEPTED,
    OFFER_CLOSED,
    OFFER_FULL,
    AdmissionQueue,
    KnotsService,
    LoadGenerator,
    RingHistogram,
    ServeConfig,
    spec_from_json,
    synthesize_workload,
)

SMALL = dict(nodes=2, gpus_per_node=2, status_interval_s=0.0)


# -- RingHistogram ------------------------------------------------------------


class TestRingHistogram:
    def test_empty_ring_yields_nan(self):
        r = RingHistogram(8)
        assert math.isnan(r.percentile(50.0))

    def test_exact_percentiles_nearest_rank(self):
        r = RingHistogram(100)
        for v in range(1, 101):           # 1..100
            r.observe(float(v))
        assert r.percentile(50.0) == 50.0
        assert r.percentile(99.0) == 99.0
        assert r.percentile(100.0) == 100.0
        assert r.percentile(0.0) == 1.0

    def test_window_evicts_oldest(self):
        r = RingHistogram(4)
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            r.observe(v)
        assert len(r) == 4
        assert sorted(r.snapshot()) == [2.0, 3.0, 4.0, 100.0]
        assert r.count == 5               # lifetime count keeps going
        assert r.percentile(100.0) == 100.0

    def test_out_of_range_percentile_rejected(self):
        r = RingHistogram(4)
        r.observe(1.0)
        with pytest.raises(ValueError):
            r.percentile(101.0)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingHistogram(0)


# -- AdmissionQueue -----------------------------------------------------------


class TestAdmissionQueue:
    def test_accept_until_full_then_shed(self):
        q = AdmissionQueue(2)
        assert q.offer("a")[0] == OFFER_ACCEPTED
        assert q.offer("b")[0] == OFFER_ACCEPTED
        outcome, retry_after = q.offer("c")
        assert outcome == OFFER_FULL
        assert retry_after > 0.0
        assert len(q) == 2
        assert q.accepted_total == 2
        assert q.rejected_total == 1

    def test_take_all_drains_and_frees_capacity(self):
        q = AdmissionQueue(2)
        q.offer("a")
        q.offer("b")
        assert q.take_all() == ["a", "b"]
        assert len(q) == 0
        assert q.take_all() == []
        assert q.offer("c")[0] == OFFER_ACCEPTED

    def test_close_refuses_new_but_keeps_queued(self):
        q = AdmissionQueue(4)
        q.offer("a")
        q.close()
        q.close()                          # idempotent
        assert q.closed
        assert q.offer("b")[0] == OFFER_CLOSED
        assert q.take_all() == ["a"]       # drain still works

    def test_retry_after_tracks_drain_rate(self):
        now = [0.0]
        q = AdmissionQueue(100, clock=lambda: now[0])
        assert q.retry_after_s() == 1.0    # no drain observed yet
        for batch in range(3):             # 10 items per second drained
            for i in range(10):
                q.offer(i)
            q.take_all()
            now[0] += 1.0
        # half the capacity / ~10 items per s = ~5 s, inside the clamp
        assert 0.05 <= q.retry_after_s() <= 30.0
        assert q.retry_after_s() == pytest.approx(5.0, rel=0.2)

    def test_concurrent_offers_never_exceed_capacity(self):
        q = AdmissionQueue(50)
        accepted = []

        def hammer():
            for i in range(100):
                if q.offer(i)[0] == OFFER_ACCEPTED:
                    accepted.append(i)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(q) == 50
        assert len(accepted) == 50
        assert q.accepted_total + q.rejected_total == 400


# -- workload synthesis / load generator --------------------------------------


class TestLoadgen:
    def test_synthesized_workload_is_deterministic(self):
        a = synthesize_workload(qps=50.0, duration_s=2.0, seed=9)
        b = synthesize_workload(qps=50.0, duration_s=2.0, seed=9)
        assert len(a) == len(b) > 0
        assert [t for t, _ in a] == [t for t, _ in b]
        assert [s.name for _, s in a] == [s.name for _, s in b]
        assert [s.image for _, s in a] == [s.image for _, s in b]

    def test_different_seed_differs(self):
        a = synthesize_workload(qps=50.0, duration_s=2.0, seed=9)
        b = synthesize_workload(qps=50.0, duration_s=2.0, seed=10)
        assert [t for t, _ in a] != [t for t, _ in b]

    def test_qps_rescales_arrival_volume(self):
        lo = synthesize_workload(qps=20.0, duration_s=4.0, seed=3)
        hi = synthesize_workload(qps=200.0, duration_s=4.0, seed=3)
        assert len(hi) > 2 * len(lo)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            synthesize_workload(qps=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            synthesize_workload(qps=10.0, duration_s=0.0)
        with pytest.raises(ValueError):
            LoadGenerator([], lambda s: "accepted", mode="bogus")

    def test_open_loop_submits_everything(self):
        items = synthesize_workload(qps=200.0, duration_s=0.2, seed=4)
        seen = []
        gen = LoadGenerator(items, lambda spec: (seen.append(spec), "accepted")[1])
        gen.run()
        assert len(seen) == len(items)
        assert gen.stats.submitted == len(items)

    def test_closed_loop_blocks_on_undecided(self):
        items = [(0.0, f"s{i}") for i in range(5)]
        seen = []
        gen = LoadGenerator(
            items, lambda spec: (seen.append(spec), "accepted")[1],
            mode="closed", concurrency=2,
        )
        gen.start()
        time.sleep(0.3)
        assert len(seen) == 2             # two slots, no decisions yet
        gen.on_decision()                  # free one slot
        time.sleep(0.3)
        assert len(seen) == 3
        gen.stop()
        gen.join(timeout=5.0)

    def test_stop_interrupts_schedule(self):
        items = [(10_000.0, "far-future")]
        gen = LoadGenerator(items, lambda spec: "accepted")
        gen.start()
        gen.stop()
        gen.join(timeout=5.0)
        assert gen.stats.submitted == 0


# -- request validation -------------------------------------------------------


class TestSpecFromJson:
    def test_rodinia_pod(self):
        spec = spec_from_json({"image": "rodinia/lud", "seed": 3})
        assert spec.image == "rodinia/lud"
        assert spec.qos_threshold_ms is None

    def test_djinn_pod_gets_qos_threshold(self):
        spec = spec_from_json({"image": "djinn/face", "seed": 3})
        assert spec.qos_threshold_ms is not None

    def test_same_seed_same_trace(self):
        a = spec_from_json({"image": "rodinia/lud", "seed": 3})
        b = spec_from_json({"image": "rodinia/lud", "seed": 3})
        assert a.trace.total_ms == b.trace.total_ms

    @pytest.mark.parametrize("payload", [
        None,
        {},
        {"image": "noslash"},
        {"image": "rodinia/not-a-real-app"},
        {"image": "djinn/not-a-real-query"},
        {"image": "otherfamily/x"},
        {"image": "rodinia/lud", "name": 7},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises((ValueError, TypeError)):
            spec_from_json(payload)


# -- KnotsService -------------------------------------------------------------


class TestKnotsService:
    def test_injected_run_places_everything_and_drops_nothing(self):
        cfg = ServeConfig(duration_s=1.0, paced=False, http=False, seed=11, **SMALL)
        svc = KnotsService(cfg)
        items = synthesize_workload(qps=60.0, duration_s=1.0, seed=11)
        svc.inject_workload(items)
        report = svc.run()
        c = report.counts
        assert c["accepted"] == len(items)
        assert c["submitted"] == c["accepted"]     # zero dropped accepted pods
        assert c["dropped"] == 0
        assert c["placed"] == c["submitted"]
        assert report.undecided == 0
        assert report.p99_sim_ms >= 0.0

    def test_injected_run_is_deterministic_in_sim_time(self):
        def one() -> tuple:
            cfg = ServeConfig(duration_s=1.0, paced=False, http=False, **SMALL)
            svc = KnotsService(cfg)
            svc.inject_workload(synthesize_workload(qps=60.0, duration_s=1.0, seed=11))
            r = svc.run()
            return (r.sim_ms, r.events_fired, r.p50_sim_ms, r.p99_sim_ms,
                    tuple(sorted(r.counts.items())))

        assert one() == one()

    def test_request_stop_from_other_thread_drains(self):
        # No horizon: the service runs until asked to stop — the SIGINT
        # path, exercised cross-thread against a paced loop.
        cfg = ServeConfig(duration_s=None, paced=True, http=False, **SMALL)
        svc = KnotsService(cfg)
        for _, spec in synthesize_workload(qps=40.0, duration_s=0.5, seed=2):
            svc.submit_spec(spec)
        done = threading.Event()
        report_box = []

        def run():
            report_box.append(svc.run())
            done.set()

        t = threading.Thread(target=run)
        t.start()
        time.sleep(0.3)                     # let a few ticks run, paced
        svc.request_stop()
        svc.request_stop()                  # second call must not raise
        assert done.wait(timeout=60.0), "service failed to drain after stop"
        t.join(timeout=10.0)
        report = report_box[0]
        assert report.counts["dropped"] == 0
        assert report.counts["submitted"] == report.counts["accepted"]

    def test_audit_log_records_binds(self):
        cfg = ServeConfig(duration_s=0.5, paced=False, http=False, **SMALL)
        svc = KnotsService(cfg)
        svc.inject_workload(synthesize_workload(qps=40.0, duration_s=0.5, seed=6))
        report = svc.run()
        assert report.counts["placed"] > 0
        assert len(svc.obs.audit.binds()) >= report.counts["placed"]


# -- race detector integration ------------------------------------------------


class TestRaceDetectIntegration:
    def test_threaded_serve_stress_has_zero_violations(self):
        # The acceptance bar for --race-detect: a paced service with
        # concurrent submitters touches every instrumented lock and the
        # EventLoop/TSDB/SLO affinity guards without a single violation.
        cfg = ServeConfig(duration_s=None, paced=True, http=False,
                          race_detect=True, seed=7, **SMALL)
        svc = KnotsService(cfg)
        race = svc.obs.race
        assert race is not None

        done = threading.Event()
        report_box = []

        def run():
            report_box.append(svc.run())
            done.set()

        def feed(seed: int):
            for _, spec in synthesize_workload(qps=40.0, duration_s=0.3, seed=seed):
                svc.submit_spec(spec)

        runner = threading.Thread(target=run)
        runner.start()
        feeders = [threading.Thread(target=feed, args=(s,)) for s in (1, 2, 3)]
        for t in feeders:
            t.start()
        for t in feeders:
            t.join()
        time.sleep(0.3)                     # let the loop chew on the backlog
        svc.request_stop()
        assert done.wait(timeout=60.0), "service failed to drain under race-detect"
        runner.join(timeout=10.0)
        assert race.acquisitions > 0, "detector saw no instrumented lock traffic"
        assert race.violations == [], "\n".join(v.render() for v in race.violations)
        assert report_box[0].counts["dropped"] == 0

    def test_front_door_lifecycle_survives_repeated_start_stop(self):
        # Regression for the KK005 finding on FrontDoor: _thread/_aio/
        # _server are written by two threads and must stay consistent
        # across back-to-back start/stop cycles.
        from repro.serve import FrontDoor

        cfg = ServeConfig(duration_s=None, paced=True, http=False,
                          race_detect=True, **SMALL)
        svc = KnotsService(cfg)
        for _ in range(3):
            front = FrontDoor(svc, "127.0.0.1", 0)
            assert isinstance(front._state_lock, type(threading.Lock()))
            front.start()
            assert front.port != 0          # bound before start() returned
            front.stop()
            assert front._thread is None and front._aio is None
            front.stop()                    # idempotent after shutdown
        assert svc.obs.race.violations == []


# -- the HTTP front door (e2e smoke) ------------------------------------------


def _get(url: str, timeout: float = 10.0) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read()


def _post(url: str, payload: dict, timeout: float = 10.0):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


class TestFrontDoorE2E:
    def test_burst_sheds_load_and_reports_slo(self):
        from repro.serve import FrontDoor

        cfg = ServeConfig(
            duration_s=None, paced=True, http=False, queue_capacity=8,
            nodes=2, gpus_per_node=2, status_interval_s=0.1,
        )
        svc = KnotsService(cfg)
        front = FrontDoor(svc, "127.0.0.1", 0).start()
        runner = threading.Thread(target=svc.run, daemon=True)
        runner.start()
        try:
            base = front.address
            status, body = _get(f"{base}/healthz")
            assert status == 200 and body == b"ok\n"

            # Malformed submissions answer 400.
            status, _, body = _post(f"{base}/v1/pods", {"image": "bogus"})
            assert status == 400

            # A burst far above queue capacity: some accepted, some shed.
            codes = []
            retry_after = None
            for i in range(80):
                status, headers, _ = _post(
                    f"{base}/v1/pods", {"image": "djinn/face", "seed": i}
                )
                codes.append(status)
                if status == 429 and retry_after is None:
                    retry_after = headers.get("Retry-After")
            assert codes.count(202) >= 1, "no request was admitted"
            assert codes.count(429) >= 1, "backpressure never engaged"
            assert retry_after is not None and int(retry_after) >= 1

            # Wait until at least one admitted pod got a placement.
            deadline = time.monotonic() + 60.0
            placed = 0
            while time.monotonic() < deadline:
                _, body = _get(f"{base}/v1/stats")
                placed = json.loads(body)["counts"]["placed"]
                if placed >= 1:
                    break
                time.sleep(0.1)
            assert placed >= 1, "no placement decision before timeout"
            assert len(svc.obs.audit.binds()) >= 1

            # Give the status cadence one beat to refresh the gauges,
            # then check the exported SLO series.
            time.sleep(0.3)
            _, metrics = _get(f"{base}/metrics")
            text = metrics.decode()
            p99 = [ln for ln in text.splitlines()
                   if ln.startswith("serve_decision_latency_p99_ms ")]
            assert p99, f"p99 gauge missing from /metrics:\n{text[:500]}"
            assert float(p99[0].split()[-1]) > 0.0
            assert "serve_queue_depth" in text
            assert 'serve_requests_total{outcome="rejected"}' in text

            # Drain: new submissions answer 503, the loop exits cleanly.
            svc.request_stop()
            status, _, _ = _post(f"{base}/v1/pods", {"image": "djinn/face"})
            assert status == 503
            runner.join(timeout=60.0)
            assert not runner.is_alive(), "service failed to drain"
            assert svc.report().counts["dropped"] == 0
        finally:
            svc.request_stop()
            svc.loop.stop()
            front.stop()

    def test_unknown_route_404(self):
        from repro.serve import FrontDoor

        cfg = ServeConfig(duration_s=None, paced=True, http=False, **SMALL)
        svc = KnotsService(cfg)
        front = FrontDoor(svc, "127.0.0.1", 0).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{front.address}/nope")
            assert err.value.code == 404
        finally:
            front.stop()


# -- CLI / signal handling ----------------------------------------------------


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_cli_serve_drains_cleanly_on_sigint(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--qps", "20", "--duration", "60",
         "--nodes", "2", "--gpus-per-node", "2",
         "--status-interval", "0", "--no-http"],
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    time.sleep(3.0)                        # let the service accept some load
    proc.send_signal(signal.SIGINT)
    try:
        out, err = proc.communicate(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("serve did not drain after SIGINT")
    assert proc.returncode == 0, f"stdout:\n{out}\nstderr:\n{err}"
    assert "draining" in err
    assert "dropped" in out.replace("\n", " ")


def test_cli_serve_unpaced_smoke(capsys):
    from repro.cli import main

    rc = main([
        "serve", "--qps", "40", "--duration", "1", "--unpaced",
        "--nodes", "2", "--gpus-per-node", "2", "--status-interval", "0",
        "--no-http", "--seed", "5",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "offered / accepted / rejected" in out
    assert "decision latency p50/p95/p99" in out
