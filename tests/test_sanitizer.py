"""Fault-injection tests for the runtime sanitizer.

Each test plants exactly one invariant breach in an otherwise healthy
component and asserts the sanitizer trips that invariant — and only
that one — through the production call sites (engine step, kubelet
step, Knots query, DL-simulator loop), not by calling checks directly.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import INVARIANTS, Sanitizer, SanitizerError, Violation
from repro.cluster.cluster import make_paper_cluster
from repro.cluster.node import GpuNode
from repro.core.knots import Knots, KnotsConfig
from repro.core.schedulers import make_scheduler
from repro.kube.api import APIServer
from repro.kube.device_plugin import InvalidResizeError
from repro.kube.kubelet import Kubelet, KubeletConfig
from repro.obs.context import Observability
from repro.sim.dlsim import DLClusterSimulator, make_dl_policy
from repro.sim.engine import EventLoop, SimulationError
from repro.sim.simulator import KubeKnotsSimulator
from repro.workloads.dlt import DLJob, DLJobKind
from tests.conftest import make_spec
from tests.test_simulator import tiny_workload


def bind_and_admit(api, kubelet, spec, now=0.0, alloc=None):
    pod = api.submit(spec, now)
    api.bind(pod, kubelet.node.node_id, f"{kubelet.node.node_id}/gpu0",
             alloc if alloc is not None else spec.requested_mem_mb, now)
    kubelet.admit(pod, now)
    return pod


def make_kubelet(sanitized_obs):
    node = GpuNode.build("n")
    api = APIServer()
    kubelet = Kubelet(node, api,
                      config=KubeletConfig(image_pull_ms=10.0, warm_start_ms=10.0),
                      obs=sanitized_obs)
    return node, api, kubelet


class TestEventLoopInvariants:
    def test_schedule_in_past_trips(self, sanitized_obs):
        loop = EventLoop(obs=sanitized_obs)
        loop.schedule(5.0, lambda: None)
        loop.run()
        assert loop.now == 5.0
        with pytest.raises(SanitizerError) as exc:
            loop.schedule_at(loop.now - 1.0, lambda: None)
        assert exc.value.violation.invariant == "schedule_in_past"

    def test_negative_delay_trips(self, sanitized_obs):
        loop = EventLoop(obs=sanitized_obs)
        with pytest.raises(SanitizerError) as exc:
            loop.schedule(-1.0, lambda: None)
        assert exc.value.violation.invariant == "schedule_in_past"

    def test_without_sanitizer_same_misuse_is_a_simulation_error(self):
        loop = EventLoop()
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_heap_counter_corruption_trips(self, sanitized_obs):
        loop = EventLoop(obs=sanitized_obs)
        sanitized_obs.sanitizer.heap_audit_interval = 1  # audit every fire
        for t in (1.0, 2.0, 3.0):
            loop.schedule(t, lambda: None)
        loop._pending += 2  # planted corruption of the O(1) live counter
        with pytest.raises(SanitizerError) as exc:
            loop.run()
        assert exc.value.violation.invariant == "heap_consistency"

    def test_healthy_loop_is_audited_clean(self, sanitized_obs):
        loop = EventLoop(obs=sanitized_obs)
        sanitized_obs.sanitizer.heap_audit_interval = 1
        handles = [loop.schedule(float(t), lambda: None) for t in range(1, 20)]
        handles[7].cancel()  # cancellation must not desync the counter
        loop.run()
        assert sanitized_obs.sanitizer.violations == []
        assert sanitized_obs.sanitizer.checks > 0


class TestGpuMemoryConservation:
    def test_planted_overcommit_trips_on_kubelet_step(self, sanitized_obs):
        node, api, kubelet = make_kubelet(sanitized_obs)
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=100.0))
        gpu = node.gpus[0]
        # Planted breach: blow the reservation past device capacity
        # behind the accounting's back.
        gpu.containers[pod.uid].alloc_mb = gpu.mem_capacity_mb + 1_000.0
        with pytest.raises(SanitizerError) as exc:
            kubelet.step(20.0, 10.0)
        assert exc.value.violation.invariant == "memory_conservation"

    def test_planted_negative_reservation_trips(self, sanitized_obs):
        node, api, kubelet = make_kubelet(sanitized_obs)
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=100.0))
        node.gpus[0].containers[pod.uid].alloc_mb = -50.0
        with pytest.raises(SanitizerError) as exc:
            kubelet.step(20.0, 10.0)
        assert exc.value.violation.invariant == "memory_conservation"
        assert "negative reservation" in str(exc.value)

    def test_admit_checks_the_device(self, sanitized_obs):
        node, api, kubelet = make_kubelet(sanitized_obs)
        bind_and_admit(api, kubelet, make_spec("a", duration_ms=100.0))
        assert sanitized_obs.sanitizer.checks > 0
        assert sanitized_obs.sanitizer.violations == []


class TestSmShares:
    def test_arbitrate_granting_over_one_trips(self, sanitized_obs, monkeypatch):
        node, api, kubelet = make_kubelet(sanitized_obs)
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=100.0))
        kubelet.step(10.0, 10.0)  # past the pull deadline: pod is RUNNING
        gpu = node.gpus[0]
        monkeypatch.setattr(
            gpu, "arbitrate", lambda demands: ({pod.uid: 1.5}, None, None)
        )
        with pytest.raises(SanitizerError) as exc:
            kubelet.step(20.0, 10.0)
        assert exc.value.violation.invariant == "sm_shares"
        assert exc.value.violation.details["share"] == 1.5


class TestTelemetryStaleness:
    def test_stale_window_trips_on_query(self, sanitized_obs):
        cluster = make_paper_cluster(num_nodes=1)
        knots = Knots(cluster,
                      KnotsConfig(heartbeat_ms=10.0, window_ms=20_000.0),
                      obs=sanitized_obs)
        knots.heartbeat(0.0)
        gpu_id = next(iter(cluster.gpus())).gpu_id
        # Fresh read: newest sample is 0 old.
        knots.query(gpu_id, 0.0)
        # 10 s later nothing has heartbeat: the newest sample is 1000
        # heartbeats old but still inside the 20 s query window.
        with pytest.raises(SanitizerError) as exc:
            knots.query(gpu_id, 10_000.0)
        assert exc.value.violation.invariant == "telemetry_staleness"

    def test_memory_window_checks_too(self, sanitized_obs):
        cluster = make_paper_cluster(num_nodes=1)
        knots = Knots(cluster,
                      KnotsConfig(heartbeat_ms=10.0, window_ms=20_000.0),
                      obs=sanitized_obs)
        knots.heartbeat(0.0)
        with pytest.raises(SanitizerError) as exc:
            knots.memory_window(next(iter(cluster.gpus())).gpu_id, 10_000.0)
        assert exc.value.violation.invariant == "telemetry_staleness"

    def test_empty_window_is_exempt(self, sanitized_obs):
        cluster = make_paper_cluster(num_nodes=1)
        knots = Knots(cluster, KnotsConfig(heartbeat_ms=10.0), obs=sanitized_obs)
        # No heartbeat has happened: windows are empty, not stale.
        knots.query(next(iter(cluster.gpus())).gpu_id, 10_000.0)
        assert sanitized_obs.sanitizer.violations == []


class TestDlSimulatorInvariants:
    @staticmethod
    def jobs():
        return [DLJob(0, DLJobKind.TRAINING, 0.0, 1, 10.0),
                DLJob(1, DLJobKind.INFERENCE, 1.0, 1, 0.1)]

    def test_planted_negative_pool_load_trips(self, sanitized_obs):
        sim = DLClusterSimulator(self.jobs(), make_dl_policy("res-ag"),
                                 n_nodes=1, gpus_per_node=4, obs=sanitized_obs)
        sim.pool.load[0] = -1  # planted accounting corruption
        with pytest.raises(SanitizerError) as exc:
            sim.run()
        assert exc.value.violation.invariant == "pool_accounting"

    def test_clean_run_is_audited_clean(self, sanitized_obs):
        sim = DLClusterSimulator(self.jobs(), make_dl_policy("cbp-pp"),
                                 n_nodes=1, gpus_per_node=4, obs=sanitized_obs)
        result = sim.run()
        assert all(j.finish_s is not None for j in result.jobs)
        assert sanitized_obs.sanitizer.violations == []
        assert sanitized_obs.sanitizer.checks > 0


class TestResizeGuards:
    def test_negative_resize_is_a_typed_error(self):
        node = GpuNode.build("n")
        api = APIServer()
        kubelet = Kubelet(node, api, config=KubeletConfig(image_pull_ms=10.0))
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=100.0))
        with pytest.raises(InvalidResizeError):
            kubelet.resize(pod, -100.0, 5.0)
        # Backward compatible: it is still a ValueError.
        with pytest.raises(ValueError):
            kubelet.resize(pod, -100.0, 5.0)

    def test_overcapacity_resize_is_a_typed_error(self):
        node = GpuNode.build("n")
        api = APIServer()
        kubelet = Kubelet(node, api, config=KubeletConfig(image_pull_ms=10.0))
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=100.0))
        cap = node.gpus[0].mem_capacity_mb
        with pytest.raises(InvalidResizeError):
            kubelet.resize(pod, cap * 2, 5.0)


class TestReporting:
    def test_violation_lands_in_audit_log(self):
        obs = Observability(trace=False, metrics=False, audit=True,
                            sanitize=True, halt_on_violation=False)
        loop = EventLoop(obs=obs)
        with pytest.raises(SimulationError):
            # halt=False: the sanitizer records, the engine still refuses.
            loop.schedule(-1.0, lambda: None)
        records = obs.audit.violations()
        assert len(records) == 1
        assert records[0].kind == "violation"
        assert records[0].evidence["invariant"] == "schedule_in_past"
        san = obs.sanitizer
        assert san.summary() == {"schedule_in_past": 1}

    def test_collect_mode_accumulates_instead_of_raising(self):
        san = Sanitizer(halt=False)
        san.check_shares("g0", {"a": 2.0, "b": -0.5})
        assert [v.invariant for v in san.violations] == ["sm_shares", "sm_shares"]

    def test_unknown_invariant_is_rejected(self):
        san = Sanitizer(halt=False)
        with pytest.raises(ValueError):
            san.violation("not_an_invariant", "nope")

    def test_violation_render_carries_evidence(self):
        v = Violation(invariant="sm_shares", ts=12.0, message="too big",
                      details={"share": 1.5})
        assert "[sm_shares]" in v.render()
        assert "share=1.5" in v.render()

    def test_invariant_vocabulary_is_stable(self):
        assert set(INVARIANTS) == {
            "memory_conservation", "sm_shares", "schedule_in_past",
            "time_monotonicity", "heap_consistency", "telemetry_staleness",
            "pool_accounting", "fast_forward_quiescence",
            "capacity_conservation",
        }


class TestCleanEndToEnd:
    def test_sanitized_fig9_style_run_is_clean(self, sanitized_obs):
        cluster = make_paper_cluster(num_nodes=3)
        sim = KubeKnotsSimulator(cluster, make_scheduler("peak-prediction"),
                                 tiny_workload(), obs=sanitized_obs)
        result = sim.run()
        assert len(result.completed()) == 8
        assert sanitized_obs.sanitizer.violations == []
        assert sanitized_obs.sanitizer.checks > 0
