"""Tests for the static lint pass (repro.analysis.lint).

The fixture corpus under ``tests/fixtures/lint/`` holds one bad/good
pair per rule; its directory layout mirrors the package layout so that
path-scoped rules (KK001) see fixture files the same way they see
``src/repro/sim/...``.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, lint_paths, lint_source, main
from repro.analysis.lint.framework import DOCS_URL, FileContext

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

BAD_FIXTURES = {
    "KK001": FIXTURES / "sim" / "bad_kk001.py",
    "KK002": FIXTURES / "bad_kk002.py",
    "KK003": FIXTURES / "bad_kk003.py",
    "KK004": FIXTURES / "bad_kk004.py",
}
GOOD_FIXTURES = {
    "KK001": FIXTURES / "sim" / "good_kk001.py",
    "KK002": FIXTURES / "good_kk002.py",
    "KK003": FIXTURES / "good_kk003.py",
    "KK004": FIXTURES / "good_kk004.py",
}


def lint_fixture(path: Path, select=None):
    return lint_source(path.read_text(), str(path), select=select)


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
    def test_bad_fixture_fires_its_rule(self, rule_id):
        findings = lint_fixture(BAD_FIXTURES[rule_id])
        assert findings, f"{rule_id} bad fixture produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(GOOD_FIXTURES))
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_fixture(GOOD_FIXTURES[rule_id]) == []

    def test_bad_kk001_catches_every_nondeterminism_source(self):
        messages = " ".join(f.message for f in lint_fixture(BAD_FIXTURES["KK001"]))
        for source in ("time.time", "datetime.now", "random.random",
                       "np.random.rand", "random.choice", "from random import"):
            assert source in messages

    def test_bad_kk002_catches_all_four_boundary_shapes(self):
        findings = lint_fixture(BAD_FIXTURES["KK002"])
        assert len(findings) == 4  # kwarg, assignment, arithmetic, comparison

    def test_bad_kk003_catches_scheduling_and_window_mutation(self):
        messages = [f.message for f in lint_fixture(BAD_FIXTURES["KK003"])]
        assert len(messages) == 5
        assert any("negative delay" in m for m in messages)
        assert any("schedule_at" in m for m in messages)
        assert sum("SeriesWindow" in m for m in messages) == 3

    def test_bad_kk004_catches_defaults_and_unfrozen_config(self):
        findings = lint_fixture(BAD_FIXTURES["KK004"])
        assert len(findings) == 3  # two mutable defaults + one unfrozen Config

    def test_suppression_pragma_silences_findings(self):
        path = FIXTURES / "suppressed.py"
        assert lint_fixture(path) == []
        # The same code without the pragmas is not clean.
        stripped = "\n".join(
            line.split("#")[0].rstrip() for line in path.read_text().splitlines()
        )
        assert lint_source(stripped, str(path))


class TestScoping:
    """KK001 only applies inside simulation-critical packages."""

    WALLCLOCK = "import time\n\ndef f():\n    return time.time()\n"

    def test_fires_under_sim_path(self):
        findings = lint_source(self.WALLCLOCK, "src/repro/sim/whatever.py")
        assert [f.rule_id for f in findings] == ["KK001"]

    def test_silent_outside_critical_packages(self):
        assert lint_source(self.WALLCLOCK, "src/repro/plots/whatever.py") == []
        assert lint_source(self.WALLCLOCK, "experiments/fig9.py") == []

    def test_in_package_matches_components_not_substrings(self):
        ctx = FileContext.parse("x = 1\n", "src/repro/simulation_notes/a.py")
        assert not ctx.in_package({"sim"})


class TestFrameworkBehaviour:
    def test_syntax_error_becomes_kk000_finding(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.rule_id for f in findings] == ["KK000"]
        assert "syntax error" in findings[0].message

    def test_select_restricts_rules(self):
        findings = lint_fixture(BAD_FIXTURES["KK003"], select=["KK004"])
        assert findings == []

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            lint_paths([str(FIXTURES)], select=["KK999"])

    def test_finding_render_carries_id_location_and_docs_link(self):
        finding = lint_fixture(BAD_FIXTURES["KK004"])[0]
        rendered = finding.render()
        assert "bad_kk004.py" in rendered
        assert "KK004" in rendered
        assert f"{DOCS_URL}#kk004" in rendered
        assert f":{finding.line}:" in rendered

    def test_catalog_registers_the_four_rules(self):
        assert [r.id for r in all_rules()] == ["KK001", "KK002", "KK003", "KK004"]


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        repo = Path(__file__).parent.parent
        assert lint_paths([str(repo / "src" / "repro")]) == []


class TestCliEntryPoint:
    @pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
    def test_nonzero_on_each_bad_fixture(self, rule_id):
        out = io.StringIO()
        assert main([str(BAD_FIXTURES[rule_id])], out=out) == 1
        assert rule_id in out.getvalue()

    def test_zero_on_good_fixtures(self):
        out = io.StringIO()
        code = main([str(p) for p in GOOD_FIXTURES.values()], out=out)
        assert code == 0
        assert "0 findings" in out.getvalue()

    def test_usage_error_on_no_paths_and_no_files(self, tmp_path):
        assert main([], out=io.StringIO()) == 2
        assert main([str(tmp_path)], out=io.StringIO()) == 2

    def test_usage_error_on_bad_select(self):
        assert main([str(FIXTURES)], select=["NOPE"], out=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main([], list_rules=True, out=out) == 0
        text = out.getvalue()
        for rule_id in ("KK001", "KK002", "KK003", "KK004"):
            assert rule_id in text
