"""Tests for the static lint pass (repro.analysis.lint).

The fixture corpus under ``tests/fixtures/lint/`` holds one bad/good
pair per rule; its directory layout mirrors the package layout so that
path-scoped rules (KK001) see fixture files the same way they see
``src/repro/sim/...``.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.analysis.lint import all_rules, lint_paths, lint_source, main
from repro.analysis.lint.framework import DOCS_URL, FileContext

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

BAD_FIXTURES = {
    "KK001": FIXTURES / "sim" / "bad_kk001.py",
    "KK002": FIXTURES / "bad_kk002.py",
    "KK003": FIXTURES / "bad_kk003.py",
    "KK004": FIXTURES / "bad_kk004.py",
    "KK005": FIXTURES / "bad_kk005.py",
    "KK006": FIXTURES / "bad_kk006.py",
    "KK007": FIXTURES / "bad_kk007.py",
    "KK008": FIXTURES / "bad_kk008.py",
}
GOOD_FIXTURES = {
    "KK001": FIXTURES / "sim" / "good_kk001.py",
    "KK002": FIXTURES / "good_kk002.py",
    "KK003": FIXTURES / "good_kk003.py",
    "KK004": FIXTURES / "good_kk004.py",
    "KK005": FIXTURES / "good_kk005.py",
    "KK006": FIXTURES / "good_kk006.py",
    "KK007": FIXTURES / "good_kk007.py",
    "KK008": FIXTURES / "good_kk008.py",
}

ALL_RULE_IDS = [f"KK00{i}" for i in range(1, 9)]


def lint_fixture(path: Path, select=None):
    return lint_source(path.read_text(), str(path), select=select)


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
    def test_bad_fixture_fires_its_rule(self, rule_id):
        findings = lint_fixture(BAD_FIXTURES[rule_id])
        assert findings, f"{rule_id} bad fixture produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("rule_id", sorted(GOOD_FIXTURES))
    def test_good_fixture_is_clean(self, rule_id):
        assert lint_fixture(GOOD_FIXTURES[rule_id]) == []

    def test_bad_kk001_catches_every_nondeterminism_source(self):
        messages = " ".join(f.message for f in lint_fixture(BAD_FIXTURES["KK001"]))
        for source in ("time.time", "datetime.now", "random.random",
                       "np.random.rand", "random.choice", "from random import"):
            assert source in messages

    def test_bad_kk002_catches_all_four_boundary_shapes(self):
        findings = lint_fixture(BAD_FIXTURES["KK002"])
        assert len(findings) == 4  # kwarg, assignment, arithmetic, comparison

    def test_bad_kk003_catches_scheduling_and_window_mutation(self):
        messages = [f.message for f in lint_fixture(BAD_FIXTURES["KK003"])]
        assert len(messages) == 5
        assert any("negative delay" in m for m in messages)
        assert any("schedule_at" in m for m in messages)
        assert sum("SeriesWindow" in m for m in messages) == 3

    def test_bad_kk004_catches_defaults_and_unfrozen_config(self):
        findings = lint_fixture(BAD_FIXTURES["KK004"])
        assert len(findings) == 3  # two mutable defaults + one unfrozen Config

    def test_bad_kk005_pinpoints_the_shared_attribute(self):
        findings = lint_fixture(BAD_FIXTURES["KK005"])
        assert len(findings) == 1
        assert "self.running" in findings[0].message
        assert "lock" in findings[0].message

    def test_bad_kk006_catches_all_three_blocking_shapes(self):
        messages = [f.message for f in lint_fixture(BAD_FIXTURES["KK006"])]
        assert len(messages) == 3  # sleep, recv, untimed queue.get
        assert any("sleep" in m for m in messages)
        assert any("recv" in m for m in messages)
        assert any("get" in m for m in messages)

    def test_bad_kk007_names_the_leaked_lock(self):
        findings = lint_fixture(BAD_FIXTURES["KK007"])
        assert len(findings) == 1
        assert "`lock.acquire()`" in findings[0].message

    def test_bad_kk008_names_the_offending_thread_method(self):
        findings = lint_fixture(BAD_FIXTURES["KK008"])
        assert len(findings) == 1
        assert "_beat" in findings[0].message
        assert "admission queue" in findings[0].message

    def test_suppression_pragma_silences_findings(self):
        path = FIXTURES / "suppressed.py"
        assert lint_fixture(path) == []
        # The same code without the pragmas is not clean.
        stripped = "\n".join(
            line.split("#")[0].rstrip() for line in path.read_text().splitlines()
        )
        assert lint_source(stripped, str(path))


class TestScoping:
    """KK001 only applies inside simulation-critical packages."""

    WALLCLOCK = "import time\n\ndef f():\n    return time.time()\n"

    def test_fires_under_sim_path(self):
        findings = lint_source(self.WALLCLOCK, "src/repro/sim/whatever.py")
        assert [f.rule_id for f in findings] == ["KK001"]

    def test_silent_outside_critical_packages(self):
        assert lint_source(self.WALLCLOCK, "src/repro/plots/whatever.py") == []
        assert lint_source(self.WALLCLOCK, "experiments/fig9.py") == []

    def test_in_package_matches_components_not_substrings(self):
        ctx = FileContext.parse("x = 1\n", "src/repro/simulation_notes/a.py")
        assert not ctx.in_package({"sim"})

    @pytest.mark.parametrize(
        "path",
        [
            "src/repro/sim/harness.py",            # harness rides in sim/
            "src/repro/core/schedulers/helpers.py",  # scheduler helpers in core/
            "src/repro/forecast/ar1.py",
            "src/repro/cluster/gpu.py",
            "src/repro/workloads/appmix.py",
            # The SoA fast paths are replay-critical too: a host-clock
            # read in the mirror, the matrix ring, or the array-native
            # scheduler pass would break seeded determinism just as
            # surely as one in the object path.
            "src/repro/cluster/state.py",
            "src/repro/telemetry/matrix.py",
            "src/repro/core/schedulers/vectorized.py",
        ],
    )
    def test_extended_sim_critical_scope(self, path):
        findings = lint_source(self.WALLCLOCK, path)
        assert [f.rule_id for f in findings] == ["KK001"], path

    def test_kk005_fires_even_when_only_one_side_locks(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def start(self):\n"
            "        threading.Thread(target=self._run).start()\n"
            "        with self._lock:\n"
            "            self.state = 'started'\n"
            "    def _run(self):\n"
            "        self.state = 'running'\n"   # unlocked thread-side write
        )
        findings = lint_source(source, "x.py")
        assert [f.rule_id for f in findings] == ["KK005"]

    def test_kk005_ignores_construction_time_writes(self):
        source = (
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self.state = 'new'\n"       # happens-before start()
            "    def start(self):\n"
            "        threading.Thread(target=self._run).start()\n"
            "    def _run(self):\n"
            "        self.state = 'running'\n"
        )
        assert lint_source(source, "x.py") == []


class TestFrameworkBehaviour:
    def test_syntax_error_becomes_kk000_finding(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert [f.rule_id for f in findings] == ["KK000"]
        assert "syntax error" in findings[0].message

    def test_select_restricts_rules(self):
        findings = lint_fixture(BAD_FIXTURES["KK003"], select=["KK004"])
        assert findings == []

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            lint_paths([str(FIXTURES)], select=["KK999"])

    def test_finding_render_carries_id_location_and_docs_link(self):
        finding = lint_fixture(BAD_FIXTURES["KK004"])[0]
        rendered = finding.render()
        assert "bad_kk004.py" in rendered
        assert "KK004" in rendered
        assert f"{DOCS_URL}#kk004" in rendered
        assert f":{finding.line}:" in rendered

    def test_catalog_registers_all_eight_rules(self):
        assert [r.id for r in all_rules()] == ALL_RULE_IDS


class TestRepoIsClean:
    def test_src_repro_has_no_findings(self):
        repo = Path(__file__).parent.parent
        assert lint_paths([str(repo / "src" / "repro")]) == []


class TestCliEntryPoint:
    @pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
    def test_nonzero_on_each_bad_fixture(self, rule_id):
        out = io.StringIO()
        assert main([str(BAD_FIXTURES[rule_id])], out=out) == 1
        assert rule_id in out.getvalue()

    def test_zero_on_good_fixtures(self):
        out = io.StringIO()
        code = main([str(p) for p in GOOD_FIXTURES.values()], out=out)
        assert code == 0
        assert "0 findings" in out.getvalue()

    def test_usage_error_on_no_paths_and_no_files(self, tmp_path):
        assert main([], out=io.StringIO()) == 2
        assert main([str(tmp_path)], out=io.StringIO()) == 2

    def test_usage_error_on_bad_select(self):
        assert main([str(FIXTURES)], select=["NOPE"], out=io.StringIO()) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main([], list_rules=True, out=out) == 0
        text = out.getvalue()
        for rule_id in ALL_RULE_IDS:
            assert rule_id in text

    def test_json_format_on_findings(self):
        out = io.StringIO()
        assert main([str(BAD_FIXTURES["KK007"])], fmt="json", out=out) == 1
        doc = json.loads(out.getvalue())
        assert doc["clean"] is False
        assert doc["files"] == 1
        (finding,) = doc["findings"]
        assert finding["rule"] == "KK007"
        assert finding["path"].endswith("bad_kk007.py")
        assert finding["line"] == 5
        assert finding["docs"].endswith("#kk007")

    def test_json_format_on_clean_paths(self):
        out = io.StringIO()
        assert main([str(GOOD_FIXTURES["KK005"])], fmt="json", out=out) == 0
        doc = json.loads(out.getvalue())
        assert doc == {"clean": True, "files": 1, "findings": []}

    def test_unknown_format_is_usage_error(self):
        assert main([str(FIXTURES)], fmt="yaml", out=io.StringIO()) == 2
