"""Targeted tests for edge paths not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.gpu import GPU
from repro.cluster.power import GpuPowerModel
from repro.core.knots import Knots, KnotsConfig
from repro.core.profiles import ProfileStore
from repro.core.schedulers import make_scheduler
from repro.forecast.arima import Arima1
from repro.sim.engine import EventLoop
from repro.telemetry.tsdb import TimeSeriesDB
from repro.workloads.base import ResourceDemand


class TestEngineEdges:
    def test_handle_exposes_time(self):
        loop = EventLoop(start_time=5.0)
        handle = loop.schedule(2.5, lambda: None)
        assert handle.time == 7.5
        assert loop.now == 5.0

    def test_run_until_advances_clock_even_without_events(self):
        loop = EventLoop()
        assert loop.run(until=10.0) == 0
        assert loop.now == 10.0       # documented: clock reaches the boundary
        loop.schedule(1.0, lambda: None)
        loop.run()
        assert loop.now == 11.0


class TestRegistryErrors:
    def test_unknown_scheduler(self):
        with pytest.raises(KeyError):
            make_scheduler("slurm")

    def test_scheduler_kwargs_forwarded(self):
        sched = make_scheduler("cbp", percentile=90.0)
        assert sched.percentile == 90.0


class TestGpuEdges:
    def test_resize_unknown_pod(self):
        gpu = GPU("g")
        with pytest.raises(KeyError):
            gpu.resize("ghost", 100)

    def test_arbitrate_empty_is_idle(self):
        gpu = GPU("g")
        shares, sample, violation = gpu.arbitrate({})
        assert shares == {}
        assert violation is None
        assert sample.power_w == GpuPowerModel().idle_watts

    def test_sleeping_idle_arbitrate_draws_sleep_power(self):
        gpu = GPU("g")
        gpu.sleep()
        _, sample, _ = gpu.arbitrate({})
        assert sample.power_w == GpuPowerModel().sleep_watts

    def test_interference_zero_alpha_is_pure_sharing(self):
        gpu = GPU("g", interference_alpha=0.0)
        gpu.attach("a", 10)
        gpu.attach("b", 10)
        shares, _, _ = gpu.arbitrate(
            {"a": ResourceDemand(0.3, 1, 0, 0), "b": ResourceDemand(0.3, 1, 0, 0)}
        )
        assert shares["a"] == shares["b"] == 1.0


class TestKnotsEdges:
    def test_config_defaults(self):
        cfg = KnotsConfig()
        assert cfg.heartbeat_ms == 10.0
        assert cfg.window_ms == 5_000.0

    def test_provision_empty_store(self):
        store = ProfileStore()
        assert store.get("nope") is None
        assert "nope" not in store


class TestArimaModel:
    def test_predict_linear_form(self):
        model = Arima1(mu=1.0, phi=0.5, n_obs=10)
        assert model.predict(4.0) == 3.0

    def test_forecast_persistence_when_phi_zero(self):
        model = Arima1(mu=2.0, phi=0.0, n_obs=3)
        assert list(model.forecast(99.0, steps=3)) == [2.0, 2.0, 2.0]


class TestTsdbEdges:
    def test_query_open_ranges(self):
        db = TimeSeriesDB()
        for t in range(5):
            db.write("m", float(t), float(t))
        assert len(db.query("m", since=2.0)) == 3
        assert len(db.query("m", until=2.0)) == 3
        assert len(db.query("m")) == 5
