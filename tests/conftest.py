"""Shared fixtures for the Kube-Knots reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.kube.pod import PodSpec
from repro.obs.context import Observability
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_cluster() -> Cluster:
    """Three single-P100 worker nodes."""
    return make_paper_cluster(num_nodes=3)


@pytest.fixture
def sanitized_obs() -> Observability:
    """An observability bundle with the runtime sanitizer armed (halting)."""
    return Observability(trace=False, metrics=False, audit=True, sanitize=True)


def make_trace(
    name: str = "toy",
    duration_ms: float = 100.0,
    sm: float = 0.5,
    mem_mb: float = 2_000.0,
    peak_mem_mb: float | None = None,
    qos_class: QoSClass = QoSClass.BATCH,
    requested_mem_mb: float | None = None,
) -> WorkloadTrace:
    """A minimal trace: steady body with an optional short peak."""
    phases = [Phase(duration_ms * 0.9, ResourceDemand(sm=sm, mem_mb=mem_mb, tx_mbps=10.0, rx_mbps=10.0))]
    peak = peak_mem_mb if peak_mem_mb is not None else mem_mb
    phases.append(
        Phase(duration_ms * 0.1, ResourceDemand(sm=min(sm * 1.5, 1.0), mem_mb=peak, tx_mbps=10.0, rx_mbps=10.0))
    )
    return WorkloadTrace(name, phases, qos_class=qos_class, requested_mem_mb=requested_mem_mb)


def make_spec(
    name: str = "pod",
    image: str = "img/toy",
    qos_threshold_ms: float | None = None,
    **trace_kwargs,
) -> PodSpec:
    qos = trace_kwargs.pop("qos_class", QoSClass.BATCH)
    if qos_threshold_ms is not None:
        qos = QoSClass.LATENCY_CRITICAL
    trace = make_trace(name=name, qos_class=qos, **trace_kwargs)
    return PodSpec(name=name, image=image, trace=trace, qos_threshold_ms=qos_threshold_ms)


@pytest.fixture
def orchestrator(small_cluster) -> KubeKnots:
    """Kube-Knots over the small cluster with the PP scheduler."""
    return KubeKnots(small_cluster, make_scheduler("peak-prediction"))
