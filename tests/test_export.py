"""Tests for telemetry/result export and import."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator
from repro.cluster.cluster import make_paper_cluster
from repro.telemetry.export import (
    export_result_json,
    export_tsdb_csv,
    import_result_series,
    import_tsdb_csv,
    tsdb_to_rows,
)
from repro.telemetry.tsdb import TimeSeriesDB
from tests.conftest import make_spec


@pytest.fixture
def populated_db():
    db = TimeSeriesDB()
    for t in range(5):
        db.write("gpu0.sm_util", float(t), t / 10.0)
        db.write("gpu0.power_w", float(t), 100.0 + t)
    return db


class TestTsdbCsv:
    def test_rows_flatten_all_series(self, populated_db):
        rows = tsdb_to_rows(populated_db)
        assert len(rows) == 10
        assert rows[0][0] == "gpu0.power_w"   # sorted by metric then time

    def test_roundtrip(self, populated_db, tmp_path):
        path = tmp_path / "telemetry.csv"
        n = export_tsdb_csv(populated_db, path)
        assert n == 10
        loaded = import_tsdb_csv(path)
        assert loaded.metrics() == populated_db.metrics()
        original = populated_db.query("gpu0.sm_util")
        restored = loaded.query("gpu0.sm_util")
        assert np.allclose(original.values, restored.values)
        assert np.allclose(original.times, restored.times)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            import_tsdb_csv(path)

    def test_roundtrip_is_bit_exact(self, tmp_path):
        """CSV -> TSDB -> CSV preserves every timestamp and value exactly.

        Python's float repr is shortest-round-trip, so export/import must
        not lose a single bit — including values with no finite binary
        expansion (0.1), subnormals, and large magnitudes.
        """
        awkward = [
            (0.1, 0.2),
            (1.0 / 3.0, 2.0 / 3.0),
            (1e-300, 5e-324),        # near-underflow and smallest subnormal
            (1e300, -1e300),
            (123456789.123456789, -0.0),
            (np.nextafter(1.0, 2.0), np.pi),
        ]
        db = TimeSeriesDB()
        t = 0.0
        for dt, v in awkward:
            t += dt
            db.write("m", t, float(v))

        first = tmp_path / "first.csv"
        export_tsdb_csv(db, first)
        loaded = import_tsdb_csv(first)

        orig, back = db.query("m"), loaded.query("m")
        # Exact equality, not allclose: np.array_equal compares bitwise
        # for these (no NaNs involved).
        assert np.array_equal(orig.times, back.times)
        assert np.array_equal(orig.values, back.values)

        # And the re-exported file is byte-identical to the first export.
        second = tmp_path / "second.csv"
        export_tsdb_csv(loaded, second)
        assert second.read_bytes() == first.read_bytes()


class TestResultJson:
    @pytest.fixture
    def result(self):
        cluster = make_paper_cluster(num_nodes=2)
        workload = [
            (0.0, make_spec("a", duration_ms=100.0)),
            (50.0, make_spec("q", duration_ms=40.0, qos_threshold_ms=150.0)),
        ]
        return KubeKnotsSimulator(cluster, make_scheduler("cbp"), workload).run()

    def test_roundtrip_series(self, result, tmp_path):
        path = tmp_path / "run.json"
        export_result_json(result, path)
        loaded = import_result_series(path)
        assert loaded["scheduler"] == "cbp"
        assert loaded["makespan_ms"] == result.makespan_ms
        for gid, series in result.gpu_util_series.items():
            assert np.allclose(loaded["gpu_util_series"][gid], series)
        assert len(loaded["pods"]) == len(result.pods)

    def test_pod_records_complete(self, result, tmp_path):
        path = tmp_path / "run.json"
        export_result_json(result, path)
        loaded = import_result_series(path)
        pod = next(p for p in loaded["pods"] if p["name"] == "q")
        assert pod["qos_class"] == "latency-critical"
        assert pod["phase"] == "Succeeded"
        assert pod["finished_ms"] is not None

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValueError):
            import_result_series(path)


class TestDlExport:
    def test_dl_run_export(self, tmp_path):
        import json

        from repro.sim.dlsim import DLClusterSimulator, make_dl_policy
        from repro.telemetry.export import export_dl_result_json
        from repro.workloads.dlt import DLWorkloadConfig, generate_dl_workload

        cfg = DLWorkloadConfig(n_training=5, n_inference=10, window_s=600.0,
                               dlt_median_s=120.0, dlt_sigma=0.5)
        jobs = generate_dl_workload(cfg, seed=0)
        result = DLClusterSimulator(jobs, make_dl_policy("cbp-pp"),
                                    n_nodes=2, gpus_per_node=4).run()
        path = tmp_path / "dl.json"
        export_dl_result_json(result, path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "kube-knots-repro/dl-run"
        assert payload["policy"] == "cbp-pp"
        assert len(payload["jobs"]) == 15
        assert all(j["finish_s"] is not None for j in payload["jobs"])
