"""Tests for the DL-cluster workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.dlt import (
    GANG_PROBS,
    GANG_SIZES,
    DLJob,
    DLJobKind,
    DLWorkloadConfig,
    generate_dl_workload,
)


class TestGeneration:
    def test_exact_counts(self):
        cfg = DLWorkloadConfig(n_training=50, n_inference=120)
        jobs = generate_dl_workload(cfg, seed=0)
        kinds = [j.kind for j in jobs]
        assert kinds.count(DLJobKind.TRAINING) == 50
        assert kinds.count(DLJobKind.INFERENCE) == 120

    def test_paper_default_counts(self):
        jobs = generate_dl_workload(seed=0)
        assert len(jobs) == 520 + 1400

    def test_sorted_by_arrival_with_sequential_ids(self):
        jobs = generate_dl_workload(DLWorkloadConfig(n_training=30, n_inference=30), seed=1)
        arrivals = [j.arrival_s for j in jobs]
        assert arrivals == sorted(arrivals)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))

    def test_gang_sizes_from_catalogue(self):
        jobs = generate_dl_workload(DLWorkloadConfig(n_training=200, n_inference=10), seed=2)
        gangs = {j.num_gpus for j in jobs if j.kind is DLJobKind.TRAINING}
        assert gangs <= set(GANG_SIZES.tolist())
        assert 1 in gangs                       # single-GPU jobs dominate

    def test_inference_jobs_single_gpu_with_slo(self):
        cfg = DLWorkloadConfig(n_training=5, n_inference=50)
        for j in generate_dl_workload(cfg, seed=3):
            if j.kind is DLJobKind.INFERENCE:
                assert j.num_gpus == 1
                assert j.qos_threshold_s == cfg.dli_qos_s
                assert cfg.dli_min_s <= j.service_s <= cfg.dli_max_s

    def test_training_durations_heavy_tailed(self):
        jobs = generate_dl_workload(DLWorkloadConfig(n_training=400, n_inference=10), seed=4)
        services = np.array([j.service_s for j in jobs if j.kind is DLJobKind.TRAINING])
        assert services.max() > 5 * np.median(services)

    def test_deterministic_by_seed(self):
        a = generate_dl_workload(seed=9)
        b = generate_dl_workload(seed=9)
        assert [(j.arrival_s, j.service_s) for j in a] == [(j.arrival_s, j.service_s) for j in b]

    def test_gang_probs_normalized(self):
        assert GANG_PROBS.sum() == pytest.approx(1.0)


class TestDLJob:
    def test_jct_requires_finish(self):
        job = DLJob(0, DLJobKind.TRAINING, 0.0, 1, 100.0)
        with pytest.raises(ValueError):
            _ = job.jct_s
        job.finish_s = 150.0
        assert job.jct_s == 150.0

    def test_violation_logic(self):
        job = DLJob(0, DLJobKind.INFERENCE, 10.0, 1, 0.05, qos_threshold_s=0.15)
        job.finish_s = 10.1
        assert not job.violates_qos()
        job.finish_s = 10.3
        assert job.violates_qos()

    def test_training_never_violates(self):
        job = DLJob(0, DLJobKind.TRAINING, 0.0, 1, 100.0)
        job.finish_s = 1e9
        assert not job.violates_qos()
