"""Tests for the Alibaba batch_task.csv replayer."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator
from repro.workloads.trace_replay import load_batch_tasks, tasks_to_workload

CSV = """\
86400,86500,j_1,t_1,1,Terminated,600,4.0
86410,86470,j_1,t_2,1,Terminated,1200,8.0
86420,86430,j_2,t_1,1,Failed,600,4.0
86430,86420,j_3,t_1,1,Terminated,600,4.0
86440,86540,j_4,t_1,1,Terminated,,4.0
86450,86650,j_5,t_1,2,Terminated,3200,25.0
garbage row
"""


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "batch_task.csv"
    path.write_text(CSV)
    return path


class TestLoading:
    def test_only_valid_terminated_tasks(self, trace_file):
        tasks = load_batch_tasks(trace_file)
        # j_2 (Failed), j_3 (negative duration), j_4 (missing plan_cpu)
        # and the garbage row are dropped
        assert [t.job_id for t in tasks] == ["j_1", "j_1", "j_5"]

    def test_arrivals_rebased_and_sorted(self, trace_file):
        tasks = load_batch_tasks(trace_file)
        assert tasks[0].arrival_s == 0.0
        assert [t.arrival_s for t in tasks] == sorted(t.arrival_s for t in tasks)
        assert tasks[1].arrival_s == pytest.approx(10.0)

    def test_resource_normalization(self, trace_file):
        tasks = load_batch_tasks(trace_file, machine_cores=64)
        first = tasks[0]
        assert first.cpu_fraction == pytest.approx(600 / (100 * 64))
        assert first.mem_fraction == pytest.approx(0.04)

    def test_max_tasks_bound(self, trace_file):
        assert len(load_batch_tasks(trace_file, max_tasks=2)) == 2

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert load_batch_tasks(path) == []


class TestWorkloadConversion:
    def test_specs_carry_trace_resources(self, trace_file):
        tasks = load_batch_tasks(trace_file)
        items = tasks_to_workload(tasks, seed=3)
        assert len(items) == len(tasks)
        times = [t for t, _ in items]
        assert times == sorted(times)
        big = items[-1][1]   # j_5 asked for 25 % of node memory
        small = items[0][1]
        assert big.trace.peak_mem_mb() > small.trace.peak_mem_mb()

    def test_time_scaling(self, trace_file):
        tasks = load_batch_tasks(trace_file)
        full = tasks_to_workload(tasks, time_scale=1.0)
        fast = tasks_to_workload(tasks, time_scale=0.1)
        assert fast[-1][0] == pytest.approx(full[-1][0] * 0.1)

    def test_replayed_workload_simulates(self, trace_file):
        tasks = load_batch_tasks(trace_file)
        workload = tasks_to_workload(tasks, time_scale=0.01, duration_scale=0.05, seed=1)
        cluster = make_paper_cluster(num_nodes=2)
        result = KubeKnotsSimulator(cluster, make_scheduler("peak-prediction"), workload).run()
        assert len(result.completed()) == len(workload)
