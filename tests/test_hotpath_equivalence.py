"""Equivalence proofs for the hot-path rewrites.

Every optimisation in the telemetry -> forecast hot path kept its
original implementation as an in-tree reference:

* ``_RingSeries.ordered()`` — the copy-then-slice query path the
  in-ring binary search replaced;
* ``correlation_matrix_pairwise`` — the O(k^2) re-ranking matrix the
  rank-once vectorised ``correlation_matrix`` replaced;
* ``fit_ar1`` — the batch AR(1) fit the sufficient-statistics
  ``Ar1Cache`` replaced on the per-heartbeat path.

These tests pin the fast paths to their references point-for-point
(TSDB, ranks) or to 1e-9 (AR(1), where float summation order differs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.forecast.arima import Ar1Cache, fit_ar1
from repro.forecast.correlation import (
    correlation_matrix,
    correlation_matrix_pairwise,
    rank_with_ties,
    rankdata,
    spearman,
    spearman_from_ranks,
)
from repro.telemetry.tsdb import SeriesWindow, TimeSeriesDB, _RingSeries

# ---------------------------------------------------------------------------
# TSDB: in-ring binary search vs. the copy-then-slice reference
# ---------------------------------------------------------------------------


def _reference_window(series: _RingSeries, since, until) -> SeriesWindow:
    """The pre-optimisation query path: materialise, then slice."""
    times, values = series.ordered()
    lo = 0 if since is None else int(np.searchsorted(times, since, side="left"))
    hi = len(times) if until is None else int(np.searchsorted(times, until, side="right"))
    return SeriesWindow(times[lo:hi], values[lo:hi])


times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=80,
).map(sorted)

bound_strategy = st.one_of(
    st.none(),
    st.floats(min_value=-10.0, max_value=1.1e6, allow_nan=False, allow_infinity=False),
)


@given(
    times=times_strategy,
    capacity=st.integers(min_value=1, max_value=48),
    since=bound_strategy,
    until=bound_strategy,
)
@settings(max_examples=300)
def test_inring_query_matches_reference(times, capacity, since, until):
    """Fast path == reference across partial-fill, wraparound, empty."""
    series = _RingSeries(capacity)
    for i, t in enumerate(times):
        series.append(t, float(i))

    got = series.window(since, until)
    want = _reference_window(series, since, until)

    np.testing.assert_array_equal(got.times, want.times)
    np.testing.assert_array_equal(got.values, want.values)


@given(times=times_strategy.filter(len), capacity=st.integers(min_value=1, max_value=48))
@settings(max_examples=150)
def test_inring_query_exact_boundaries(times, capacity):
    """Windows pinned to stored timestamps are inclusive on both ends,
    exactly as the reference path was."""
    series = _RingSeries(capacity)
    for i, t in enumerate(times):
        series.append(t, float(i))

    for since, until in [
        (times[0], times[-1]),
        (times[0], times[0]),
        (times[-1], times[-1]),
        (times[len(times) // 2], times[-1]),
    ]:
        got = series.window(since, until)
        want = _reference_window(series, since, until)
        np.testing.assert_array_equal(got.times, want.times)
        np.testing.assert_array_equal(got.values, want.values)


@given(
    n_points=st.integers(min_value=0, max_value=120),
    capacity=st.integers(min_value=1, max_value=40),
    window=st.floats(min_value=0.0, max_value=150.0, allow_nan=False),
)
@settings(max_examples=150)
def test_seam_straddling_windows_match_reference(n_points, capacity, window):
    """Sliding last-``window`` queries — the PP shape — hit every slice
    case: contiguous-older, contiguous-newer, and seam-straddling."""
    db = TimeSeriesDB(capacity=capacity)
    for i in range(n_points):
        db.write("m", float(i), float(i) * 0.5)
    now = float(n_points - 1) if n_points else 0.0

    got = db.last_window("m", window, now)
    if n_points == 0:
        assert len(got) == 0
        return
    series = db._series["m"]
    want = _reference_window(series, now - window, now)
    np.testing.assert_array_equal(got.times, want.times)
    np.testing.assert_array_equal(got.values, want.values)


def test_windows_are_read_only_views():
    db = TimeSeriesDB(capacity=8)
    for i in range(20):
        db.write("m", float(i), float(i))
    w = db.last_window("m", 3.0, 19.0)
    assert not w.times.flags.writeable
    assert not w.values.flags.writeable
    with pytest.raises(ValueError):
        w.values[0] = 99.0


def test_query_cache_serves_repeat_queries_and_invalidates_on_write():
    db = TimeSeriesDB(capacity=16)
    for i in range(10):
        db.write("m", float(i), float(i))

    first = db.query("m", since=2.0, until=8.0)
    again = db.query("m", since=2.0, until=8.0)
    assert again is first                      # one-entry cache hit

    db.write("m", 10.0, 10.0)                  # version bump invalidates
    after = db.query("m", since=2.0, until=8.0)
    assert after is not first
    np.testing.assert_array_equal(after.times, first.times)


def test_query_many_matches_individual_queries():
    db = TimeSeriesDB(capacity=32)
    for i in range(20):
        db.write_many(float(i), {"a": float(i), "b": float(-i)})

    batch = db.query_many(["a", "b", "ghost"], since=5.0, until=15.0)
    assert set(batch) == {"a", "b", "ghost"}
    for name in ("a", "b"):
        single = db.query(name, since=5.0, until=15.0)
        np.testing.assert_array_equal(batch[name].times, single.times)
        np.testing.assert_array_equal(batch[name].values, single.values)
    assert len(batch["ghost"]) == 0


# ---------------------------------------------------------------------------
# Correlation: rank-once vectorised matrix vs. pairwise reference
# ---------------------------------------------------------------------------


values_strategy = st.lists(
    st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)


@given(xs=values_strategy)
@settings(max_examples=200)
def test_rank_with_ties_matches_scipy_average(xs):
    x = np.asarray(xs)
    ranks, has_ties = rank_with_ties(x)
    np.testing.assert_array_equal(ranks, sps.rankdata(x, method="average"))
    assert has_ties == (len(np.unique(x)) < len(x))


def test_rankdata_keeps_legacy_loop_semantics():
    # Bitwise-equal to the old sort-and-average loop on a tied input.
    x = np.array([3.0, 1.0, 3.0, 2.0, 3.0, 1.0])
    np.testing.assert_array_equal(rankdata(x), [5.0, 1.5, 5.0, 3.0, 5.0, 1.5])


@given(
    n_series=st.integers(min_value=1, max_value=8),
    n_points=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=2**16),
    quantize=st.booleans(),
)
@settings(max_examples=100)
def test_matrix_matches_pairwise_reference(n_series, n_points, seed, quantize):
    rng = np.random.default_rng(seed)
    series = {}
    for i in range(n_series):
        v = rng.normal(size=n_points)
        if quantize:                      # force heavy ties
            v = np.round(v)
        series[f"s{i}"] = v
    series["flat"] = np.zeros(n_points)   # degenerate constant series

    names_fast, fast = correlation_matrix(series)
    names_ref, ref = correlation_matrix_pairwise(series)

    assert names_fast == names_ref
    np.testing.assert_allclose(fast, ref, atol=1e-12)


@given(xs=values_strategy.filter(lambda v: len(v) >= 2), seed=st.integers(0, 2**16))
@settings(max_examples=150)
def test_spearman_from_cached_ranks_matches_direct(xs, seed):
    x = np.asarray(xs)
    y = np.random.default_rng(seed).permutation(x) + 0.25
    rx, tx = rank_with_ties(x)
    ry, ty = rank_with_ties(y)
    assert spearman_from_ranks(rx, ry, tx or ty) == pytest.approx(
        spearman(x, y), abs=1e-12
    )


def test_spearman_from_ranks_does_not_mutate_cached_ranks():
    rx, _ = rank_with_ties(np.array([1.0, 3.0, 2.0, 4.0]))
    ry, _ = rank_with_ties(np.array([2.0, 1.0, 4.0, 3.0]))
    before = rx.copy()
    spearman_from_ranks(rx, ry, True)     # ties path centres the ranks
    np.testing.assert_array_equal(rx, before)


# ---------------------------------------------------------------------------
# AR(1): incremental sufficient statistics vs. batch reference
# ---------------------------------------------------------------------------


@given(
    n_total=st.integers(min_value=3, max_value=400),
    window=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=100)
def test_incremental_ar1_matches_batch_over_sliding_windows(n_total, window, seed):
    rng = np.random.default_rng(seed)
    values = np.clip(rng.normal(0.5, 0.25, n_total), 0.0, 1.0)
    times = np.arange(n_total, dtype=float) * 0.25

    cache = Ar1Cache()
    for i in range(n_total - window + 1):
        t, v = times[i : i + window], values[i : i + window]
        incremental = cache.fit("gpu", t, v)
        batch = fit_ar1(v)
        assert incremental.phi == pytest.approx(batch.phi, abs=1e-9)
        assert incremental.mu == pytest.approx(batch.mu, abs=1e-9)
        assert incremental.n_obs == batch.n_obs
    # A 1-point window shares nothing with its successor, so only
    # windows of >= 2 points can take the incremental path.
    assert cache.slides > 0 or window < 2 or n_total - window + 1 <= 1


def test_incremental_ar1_handles_duplicate_timestamps():
    """Duplicate heartbeat stamps break the slide's alignment check —
    the cache must fall back to a batch rebuild, not mis-slide."""
    times = np.array([0.0, 1.0, 1.0, 2.0, 3.0, 4.0])
    values = np.array([0.1, 0.5, 0.2, 0.8, 0.3, 0.6])
    cache = Ar1Cache()
    for i in range(3):
        t, v = times[i : i + 4], values[i : i + 4]
        assert cache.fit("g", t, v).phi == pytest.approx(fit_ar1(v).phi, abs=1e-9)


def test_incremental_ar1_handles_disjoint_jump():
    cache = Ar1Cache()
    a = np.arange(10.0)
    cache.fit("g", a, np.sin(a))
    b = a + 1_000.0                       # nothing shared -> rebuild
    model = cache.fit("g", b, np.cos(b))
    batch = fit_ar1(np.cos(b))
    assert model.phi == pytest.approx(batch.phi, abs=1e-9)
    assert cache.rebuilds >= 2


def test_ar1_cache_is_per_key():
    cache = Ar1Cache()
    t = np.arange(20.0)
    up = cache.fit("gpu-a", t, t / 20.0)
    down = cache.fit("gpu-b", t, 1.0 - t / 20.0)
    assert up.phi == pytest.approx(fit_ar1(t / 20.0).phi, abs=1e-9)
    assert down.phi == pytest.approx(fit_ar1(1.0 - t / 20.0).phi, abs=1e-9)
