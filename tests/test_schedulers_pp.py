"""Tests for the Peak Prediction scheduler (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import PeakPredictionScheduler
from repro.core.schedulers.base import Bind, Sleep, Wake
from repro.workloads.base import ResourceDemand
from tests.conftest import make_spec, make_trace


def build(nodes=3, **kwargs):
    cluster = make_paper_cluster(num_nodes=nodes)
    sched = PeakPredictionScheduler(**kwargs)
    return cluster, sched, KubeKnots(cluster, sched)


def feed_memory_series(kk, gpu_id, utils, step_ms=10.0):
    """Write a mem_util series into the node's TSDB directly."""
    node_id = gpu_id.split("/")[0]
    tsdb = kk.knots.monitors[node_id].tsdb
    for i, u in enumerate(utils):
        tsdb.write(f"{gpu_id}.mem_util", i * step_ms, float(u))
    return len(utils) * step_ms


def learn_profile(kk, image, mem_mb, peak_mem_mb, n=2, duration_ms=100.0):
    for _ in range(n):
        kk.knots.profiles.record_trace(
            image, make_trace(duration_ms=duration_ms, mem_mb=mem_mb, peak_mem_mb=peak_mem_mb)
        )


class TestForecastBranch:
    def test_forecast_admits_correlated_pod_with_headroom(self):
        """Where CBP refuses, PP forecasts free memory and admits."""
        cluster, sched, kk = build(nodes=1)
        learn_profile(kk, "img/big", mem_mb=2_000, peak_mem_mb=5_000)
        now = feed_memory_series(kk, "node1/gpu0", np.linspace(0.30, 0.31, 50))
        a = kk.api.submit(make_spec("a", image="img/big", requested_mem_mb=5_200.0), now)
        b = kk.api.submit(make_spec("b", image="img/big", requested_mem_mb=5_200.0), now)
        actions = kk.scheduling_pass(now)
        binds = [x for x in actions if isinstance(x, Bind)]
        assert len(binds) == 2
        assert binds[0].gpu_id == binds[1].gpu_id == "node1/gpu0"
        assert sched.forecast_stats[0] >= 1

    def test_forecast_rejects_when_memory_trending_full(self):
        cluster, sched, kk = build(nodes=1)
        learn_profile(kk, "img/big", mem_mb=5_000, peak_mem_mb=9_000)
        now = feed_memory_series(kk, "node1/gpu0", np.linspace(0.5, 0.95, 50))
        kk.api.submit(make_spec("a", image="img/big", requested_mem_mb=9_000.0), now)
        kk.api.submit(make_spec("b", image="img/big", requested_mem_mb=9_000.0), now)
        actions = kk.scheduling_pass(now)
        binds = [x for x in actions if isinstance(x, Bind)]
        # only one of the correlated pair may land on the single device
        assert len(binds) == 1

    def test_no_trend_means_no_forecast_admission(self):
        """Eq. 2 gate: alternating series has negative autocorrelation."""
        cluster, sched, kk = build(nodes=1)
        learn_profile(kk, "img/big", mem_mb=2_000, peak_mem_mb=5_000)
        noise = [0.3, 0.7] * 25
        now = feed_memory_series(kk, "node1/gpu0", noise)
        kk.api.submit(make_spec("a", image="img/big", requested_mem_mb=5_200.0), now)
        kk.api.submit(make_spec("b", image="img/big", requested_mem_mb=5_200.0), now)
        kk.scheduling_pass(now)
        assert sched.forecast_stats[0] == 0


class TestConsolidation:
    def test_batch_packs_fullest_active_device(self):
        cluster, sched, kk = build(nodes=2)
        learn_profile(kk, "img/a", mem_mb=500, peak_mem_mb=800)
        learn_profile(kk, "img/b", mem_mb=400, peak_mem_mb=700)
        kk.api.submit(make_spec("a", image="img/a", sm=0.2, requested_mem_mb=800.0), 0.0)
        kk.scheduling_pass(0.0)
        kk.api.submit(make_spec("b", image="img/b", sm=0.2, requested_mem_mb=700.0), 1.0)
        actions = kk.scheduling_pass(1.0)
        bind = next(x for x in actions if isinstance(x, Bind))
        # joins the already-occupied device instead of the empty one
        occupied = kk.api.pods()[0].gpu_id
        assert bind.gpu_id == occupied

    def test_sleeps_empty_devices_when_queue_empty(self):
        cluster, sched, kk = build(nodes=3)
        kk.api.submit(make_spec("only"), 0.0)
        actions = kk.scheduling_pass(0.0)
        sleeps = [x for x in actions if isinstance(x, Sleep)]
        # 3 devices, one occupied (stays active); both empties may sleep
        assert len(sleeps) == 2

    def test_keeps_capacity_while_pods_pending(self):
        cluster, sched, kk = build(nodes=2)
        # un-placeable pod keeps pending non-empty
        kk.api.submit(make_spec("huge", requested_mem_mb=16_384.0, mem_mb=16_000.0), 0.0)
        kk.api.submit(make_spec("huge2", requested_mem_mb=16_384.0, mem_mb=16_000.0), 0.0)
        kk.api.submit(make_spec("huge3", requested_mem_mb=16_384.0, mem_mb=16_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        assert not [x for x in actions if isinstance(x, Sleep)]

    def test_wakes_sleeping_device_for_unplaceable_pod(self):
        cluster, sched, kk = build(nodes=2)
        cluster.find_gpu("node2/gpu0").sleep()
        kk.api.submit(make_spec("a", requested_mem_mb=12_000.0), 0.0)
        kk.api.submit(make_spec("b", requested_mem_mb=12_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        wakes = [x for x in actions if isinstance(x, Wake)]
        binds = [x for x in actions if isinstance(x, Bind)]
        assert len(wakes) == 1 and wakes[0].gpu_id == "node2/gpu0"
        assert len(binds) == 2


class TestSloAwarePlacement:
    def test_tight_query_avoids_hot_device(self):
        """A near-budget query must not share a compute-loaded device."""
        cluster, sched, kk = build(nodes=2)
        learn_profile(kk, "img/hot", mem_mb=500, peak_mem_mb=700)
        for name in ("h1", "h2", "h3"):
            kk.api.submit(make_spec(name, image="img/hot", sm=0.6, requested_mem_mb=700.0), 0.0)
        kk.scheduling_pass(0.0)
        # 130 ms runtime against a 150 ms budget: almost no slack
        learn_profile(kk, "img/slowq", mem_mb=300, peak_mem_mb=400, duration_ms=130.0)
        lc = kk.api.submit(
            make_spec("q", image="img/slowq", qos_threshold_ms=150.0, duration_ms=130.0,
                      requested_mem_mb=400.0),
            1.0,
        )
        actions = kk.scheduling_pass(1.0)
        bind = next(x for x in actions if isinstance(x, Bind) and x.pod_uid == lc.uid)
        batch_gpu = kk.api.pods()[0].gpu_id
        assert bind.gpu_id != batch_gpu

    def test_slack_query_colocates_with_batch(self):
        """A fast query co-locates onto the busy device (consolidation)."""
        cluster, sched, kk = build(nodes=2)
        learn_profile(kk, "img/warm", mem_mb=500, peak_mem_mb=700)
        kk.api.submit(make_spec("h1", image="img/warm", sm=0.4, requested_mem_mb=700.0), 0.0)
        kk.scheduling_pass(0.0)
        learn_profile(kk, "img/fastq", mem_mb=300, peak_mem_mb=400, duration_ms=20.0)
        lc = kk.api.submit(
            make_spec("q", image="img/fastq", qos_threshold_ms=150.0, duration_ms=20.0,
                      requested_mem_mb=400.0),
            1.0,
        )
        actions = kk.scheduling_pass(1.0)
        bind = next(x for x in actions if isinstance(x, Bind) and x.pod_uid == lc.uid)
        batch_gpu = kk.api.pods()[0].gpu_id
        assert bind.gpu_id == batch_gpu

    def test_lc_ceiling_derives_from_profile_runtime(self):
        cluster, sched, kk = build(nodes=1)
        learn_profile(kk, "img/slow", mem_mb=300, peak_mem_mb=400, duration_ms=140.0)
        pod = kk.api.submit(
            make_spec("q", image="img/slow", qos_threshold_ms=150.0, duration_ms=140.0),
            0.0,
        )
        ceiling = sched._lc_ceiling(kk.build_context(0.0), pod)
        # 140 ms runtime against a 150 ms budget leaves almost no
        # interference allowance
        assert ceiling == pytest.approx(0.1, abs=0.05)

    def test_lc_ceiling_generous_for_fast_queries(self):
        cluster, sched, kk = build(nodes=1)
        learn_profile(kk, "img/fast", mem_mb=300, peak_mem_mb=400, duration_ms=20.0)
        pod = kk.api.submit(
            make_spec("q", image="img/fast", qos_threshold_ms=150.0, duration_ms=20.0),
            0.0,
        )
        ceiling = sched._lc_ceiling(kk.build_context(0.0), pod)
        assert ceiling > 2.0

    def test_batch_never_joins_live_query(self):
        cluster, sched, kk = build(nodes=2)
        lc = kk.api.submit(make_spec("q", qos_threshold_ms=150.0, requested_mem_mb=500.0), 0.0)
        kk.scheduling_pass(0.0)
        batch = kk.api.submit(make_spec("b", requested_mem_mb=500.0), 1.0)
        actions = kk.scheduling_pass(1.0)
        bind = next(x for x in actions if isinstance(x, Bind))
        assert bind.gpu_id != lc.gpu_id
