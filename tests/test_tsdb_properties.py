"""Property-based tests for the node-local TSDB.

Two contracts the schedulers lean on:

* **Window boundaries are inclusive on both ends** — ``query(since,
  until)`` returns exactly the points with ``since <= t <= until``.
  PP's five-second sliding window (``last_window``) samples land
  exactly on heartbeat timestamps, so off-by-one boundary handling
  would silently shrink its forecast input.
* **Ring-buffer wraparound is invisible** — once a series exceeds its
  capacity, the store holds exactly the most recent ``capacity``
  points, still in time order, and every query behaves as if only
  those points were ever written.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.telemetry.tsdb import TimeSeriesDB

# Heartbeat-like timelines: non-decreasing, duplicate timestamps allowed
# (two monitors can report the same tick).
times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
).map(sorted)

bound_strategy = st.one_of(
    st.none(),
    st.floats(min_value=-10.0, max_value=1.1e6, allow_nan=False, allow_infinity=False),
)


@given(times=times_strategy, since=bound_strategy, until=bound_strategy)
def test_query_matches_inclusive_brute_force(times, since, until):
    db = TimeSeriesDB(capacity=len(times) + 8)
    for i, t in enumerate(times):
        db.write("m", t, float(i))

    window = db.query("m", since=since, until=until)
    lo = -np.inf if since is None else since
    hi = np.inf if until is None else until
    expected = [(t, float(i)) for i, t in enumerate(times) if lo <= t <= hi]

    assert list(zip(window.times, window.values)) == expected


@given(times=times_strategy)
def test_exact_boundary_points_are_included(times):
    db = TimeSeriesDB(capacity=len(times) + 8)
    for i, t in enumerate(times):
        db.write("m", t, float(i))
    first, last = times[0], times[-1]

    window = db.query("m", since=first, until=last)
    assert len(window) == len(times)

    # Pinning both bounds to one stored timestamp returns its points.
    pin = db.query("m", since=first, until=first)
    assert len(pin) == times.count(first)


@given(
    n_points=st.integers(min_value=1, max_value=200),
    capacity=st.integers(min_value=1, max_value=50),
)
def test_wraparound_keeps_most_recent_points_in_order(n_points, capacity):
    db = TimeSeriesDB(capacity=capacity)
    for i in range(n_points):
        db.write("m", float(i), float(i * 10))

    window = db.query("m")
    kept = min(n_points, capacity)
    expected_times = [float(i) for i in range(n_points - kept, n_points)]

    assert list(window.times) == expected_times
    assert list(window.values) == [t * 10 for t in expected_times]
    assert db.latest("m") == (float(n_points - 1), float((n_points - 1) * 10))


@given(
    n_points=st.integers(min_value=5, max_value=120),
    capacity=st.integers(min_value=2, max_value=40),
    window=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
@settings(max_examples=60)
def test_last_window_after_wraparound(n_points, capacity, window):
    """last_window == brute-force filter over the surviving ring contents."""
    db = TimeSeriesDB(capacity=capacity)
    for i in range(n_points):
        db.write("m", float(i), float(i))
    now = float(n_points - 1)

    got = db.last_window("m", window, now)
    survivors = range(max(0, n_points - capacity), n_points)
    expected = [float(i) for i in survivors if now - window <= i <= now]

    assert list(got.times) == expected


def test_unknown_metric_yields_empty_window():
    db = TimeSeriesDB()
    window = db.query("never-written", since=0.0, until=100.0)
    assert len(window) == 0
