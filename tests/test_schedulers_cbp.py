"""Tests for the CBP scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import CBPScheduler
from repro.core.schedulers.base import Bind, Resize
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace
from tests.conftest import make_spec, make_trace


def build(scheduler=None, nodes=3):
    cluster = make_paper_cluster(num_nodes=nodes)
    return cluster, KubeKnots(cluster, scheduler or CBPScheduler())


def learn_profile(kk, image, mem_mb, peak_mem_mb, duration_ms=100.0, n=2):
    """Teach the profile store an image's behaviour (runtime feedback)."""
    for _ in range(n):
        kk.knots.profiles.record_trace(
            image, make_trace(duration_ms=duration_ms, mem_mb=mem_mb, peak_mem_mb=peak_mem_mb)
        )


class TestProvisioning:
    def test_unknown_image_gets_full_request(self):
        cluster, kk = build()
        pod = kk.api.submit(make_spec(requested_mem_mb=6_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        bind = next(a for a in actions if isinstance(a, Bind))
        assert bind.alloc_mb == 6_000.0

    def test_known_image_resized_to_p80(self):
        cluster, kk = build()
        learn_profile(kk, "img/known", mem_mb=1_000, peak_mem_mb=7_000)
        pod = kk.api.submit(
            make_spec(image="img/known", mem_mb=1_000, peak_mem_mb=7_000, requested_mem_mb=9_000.0),
            0.0,
        )
        actions = kk.scheduling_pass(0.0)
        bind = next(a for a in actions if isinstance(a, Bind))
        assert bind.alloc_mb == pytest.approx(1_000, rel=0.1)


class TestHarvesting:
    def test_resident_resized_when_queue_nonempty(self):
        cluster, kk = build()
        fat = kk.api.submit(make_spec("fat", image="img/fat", mem_mb=1_000,
                                      peak_mem_mb=2_000, requested_mem_mb=12_000.0), 0.0)
        kk.scheduling_pass(0.0)
        learn_profile(kk, "img/fat", mem_mb=1_000, peak_mem_mb=2_000)
        kk.api.submit(make_spec("pending", requested_mem_mb=1_000.0), 1.0)
        actions = kk.scheduling_pass(1.0)
        resizes = [a for a in actions if isinstance(a, Resize)]
        assert resizes and resizes[0].pod_uid == fat.uid
        assert resizes[0].new_alloc_mb < 12_000.0

    def test_no_harvest_without_pending(self):
        cluster, kk = build()
        kk.api.submit(make_spec("fat", image="img/fat", requested_mem_mb=12_000.0), 0.0)
        kk.scheduling_pass(0.0)
        learn_profile(kk, "img/fat", mem_mb=1_000, peak_mem_mb=2_000)
        actions = kk.scheduling_pass(1.0)
        assert not [a for a in actions if isinstance(a, Resize)]

    def test_latency_pods_never_shrunk(self):
        cluster, kk = build()
        lc = kk.api.submit(
            make_spec("lc", image="img/lc", qos_threshold_ms=150.0, requested_mem_mb=5_000.0),
            0.0,
        )
        kk.scheduling_pass(0.0)
        learn_profile(kk, "img/lc", mem_mb=500, peak_mem_mb=800)
        kk.api.submit(make_spec("pending"), 1.0)
        actions = kk.scheduling_pass(1.0)
        assert not [a for a in actions if isinstance(a, Resize) and a.pod_uid == lc.uid]


class TestCorrelationGate:
    def test_correlated_images_not_colocated(self):
        """Two pods of the same (large-footprint) image peak together."""
        cluster, kk = build(nodes=2)
        learn_profile(kk, "img/big", mem_mb=2_000, peak_mem_mb=6_000)
        a = kk.api.submit(make_spec("a", image="img/big", requested_mem_mb=6_500.0), 0.0)
        b = kk.api.submit(make_spec("b", image="img/big", requested_mem_mb=6_500.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [x for x in actions if isinstance(x, Bind)]
        assert len(binds) == 2
        assert binds[0].gpu_id != binds[1].gpu_id

    def test_small_pods_bypass_gate(self):
        cluster, kk = build(nodes=2)
        learn_profile(kk, "img/tiny", mem_mb=200, peak_mem_mb=400)
        for name in ("a", "b"):
            kk.api.submit(make_spec(name, image="img/tiny", requested_mem_mb=500.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [x for x in actions if isinstance(x, Bind)]
        assert binds[0].gpu_id == binds[1].gpu_id   # packed together

    def test_anticorrelated_pods_share(self):
        """Opposite usage shapes co-locate (the paper's ideal pairing)."""
        cluster, kk = build(nodes=2)
        rising = WorkloadTrace(
            "rise",
            [Phase(50, ResourceDemand(0.2, 500, 0, 0)), Phase(50, ResourceDemand(0.2, 5_000, 0, 0))],
        )
        falling = WorkloadTrace(
            "fall",
            [Phase(50, ResourceDemand(0.2, 5_000, 0, 0)), Phase(50, ResourceDemand(0.2, 500, 0, 0))],
        )
        kk.knots.profiles.record_trace("img/rise", rising)
        kk.knots.profiles.record_trace("img/fall", falling)
        from repro.kube.pod import PodSpec

        kk.api.submit(PodSpec("a", "img/rise", rising), 0.0)
        kk.api.submit(PodSpec("b", "img/fall", falling), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [x for x in actions if isinstance(x, Bind)]
        assert len(binds) == 2
        assert binds[0].gpu_id == binds[1].gpu_id


class TestSafetyGuards:
    def test_two_peak_guard_blocks_overcommit(self):
        """Room must remain for the two largest peaks to fire together."""
        cluster, kk = build(nodes=1)
        learn_profile(kk, "img/bursty", mem_mb=1_500, peak_mem_mb=9_000)
        rising = make_spec("a", image="img/bursty", mem_mb=1_500, peak_mem_mb=9_000,
                           requested_mem_mb=9_000.0)
        kk.api.submit(rising, 0.0)
        kk.scheduling_pass(0.0)
        # second bursty pod would need 2 x 7.5 GB of overshoot headroom
        other = make_spec("b", image="img/bursty2", mem_mb=1_500, peak_mem_mb=9_000,
                          requested_mem_mb=9_000.0)
        kk.knots.profiles.record_trace(
            "img/bursty2", make_trace(mem_mb=1_500, peak_mem_mb=9_000, duration_ms=77.0)
        )
        kk.api.submit(other, 1.0)
        actions = kk.scheduling_pass(1.0)
        assert not [x for x in actions if isinstance(x, Bind)]

    def test_sm_ceiling_limits_stacking(self):
        cluster, kk = build(CBPScheduler(batch_sm_ceiling=0.5), nodes=1)
        learn_profile(kk, "img/hot", mem_mb=300, peak_mem_mb=400)
        # profile says ~0.45-0.75 SM each; ceiling 0.5 admits only one
        for name in ("a", "b", "c"):
            kk.api.submit(make_spec(name, image="img/hot", sm=0.6, requested_mem_mb=400.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [x for x in actions if isinstance(x, Bind)]
        per_gpu = {}
        for b in binds:
            per_gpu[b.gpu_id] = per_gpu.get(b.gpu_id, 0) + 1
        assert all(v == 1 for v in per_gpu.values())

    def test_latency_pods_scheduled_before_batch(self):
        cluster, kk = build(nodes=1)
        batch = kk.api.submit(make_spec("batch", requested_mem_mb=12_000.0), 0.0)
        lc = kk.api.submit(make_spec("lc", qos_threshold_ms=150.0, requested_mem_mb=12_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        binds = [x for x in actions if isinstance(x, Bind)]
        assert binds[0].pod_uid == lc.uid
