"""Tests for the simulated GPU device."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cluster.gpu import GPU
from repro.workloads.base import ResourceDemand


def demand(sm=0.5, mem=1_000.0, tx=0.0, rx=0.0) -> ResourceDemand:
    return ResourceDemand(sm=sm, mem_mb=mem, tx_mbps=tx, rx_mbps=rx)


class TestAllocation:
    def test_attach_reserves_memory(self):
        gpu = GPU("g", mem_capacity_mb=16_384)
        gpu.attach("a", 4_000)
        assert gpu.allocated_mem_mb == 4_000
        assert gpu.free_mem_mb == 12_384

    def test_attach_beyond_capacity_rejected(self):
        gpu = GPU("g", mem_capacity_mb=8_000)
        gpu.attach("a", 6_000)
        with pytest.raises(ValueError):
            gpu.attach("b", 3_000)

    def test_double_attach_rejected(self):
        gpu = GPU("g")
        gpu.attach("a", 100)
        with pytest.raises(ValueError):
            gpu.attach("a", 100)

    def test_exclusive_blocks_sharing(self):
        gpu = GPU("g")
        gpu.attach("a", 100, exclusive=True)
        assert not gpu.can_fit(1.0)
        with pytest.raises(ValueError):
            gpu.attach("b", 1.0)

    def test_exclusive_needs_empty_device(self):
        gpu = GPU("g")
        gpu.attach("a", 100)
        assert not gpu.can_fit(100, exclusive=True)

    def test_detach_frees_reservation(self):
        gpu = GPU("g")
        gpu.attach("a", 5_000)
        gpu.detach("a")
        assert gpu.free_mem_mb == gpu.mem_capacity_mb
        with pytest.raises(KeyError):
            gpu.detach("a")

    def test_resize_harvests(self):
        gpu = GPU("g")
        gpu.attach("a", 8_000)
        harvested = gpu.resize("a", 2_000)
        assert harvested == 6_000
        assert gpu.free_mem_mb == gpu.mem_capacity_mb - 2_000

    def test_resize_grow_respects_capacity(self):
        gpu = GPU("g", mem_capacity_mb=8_000)
        gpu.attach("a", 4_000)
        gpu.attach("b", 3_500)
        with pytest.raises(ValueError):
            gpu.resize("a", 5_000)

    def test_attach_wakes_sleeping_device(self):
        gpu = GPU("g")
        gpu.sleep()
        assert gpu.asleep
        gpu.attach("a", 100)
        assert not gpu.asleep

    def test_sleep_requires_drained(self):
        gpu = GPU("g")
        gpu.attach("a", 100)
        with pytest.raises(ValueError):
            gpu.sleep()


class TestArbitration:
    def test_uncontended_full_share(self):
        gpu = GPU("g", interference_alpha=0.0)
        gpu.attach("a", 2_000)
        shares, sample, violation = gpu.arbitrate({"a": demand(sm=0.4)})
        assert shares["a"] == pytest.approx(1.0)
        assert violation is None
        assert sample.sm_util == pytest.approx(0.4)

    def test_oversubscribed_sm_shared_proportionally(self):
        gpu = GPU("g", interference_alpha=0.0)
        gpu.attach("a", 1_000)
        gpu.attach("b", 1_000)
        shares, sample, _ = gpu.arbitrate({"a": demand(sm=0.8), "b": demand(sm=1.0)})
        assert shares["a"] == pytest.approx(1.0 / 1.8)
        assert sample.sm_util == 1.0

    def test_interference_slows_co_runners(self):
        """Sec. I: sharing with busy neighbours taxes progress."""
        gpu = GPU("g", interference_alpha=1.0)
        gpu.attach("a", 1_000)
        gpu.attach("b", 1_000)
        shares, _, _ = gpu.arbitrate({"a": demand(sm=0.1), "b": demand(sm=0.5)})
        # a pays for b's 0.5 SM of activity: 1 / (1 + 0.5)
        assert shares["a"] == pytest.approx(1.0 / 1.5)
        assert shares["b"] == pytest.approx(1.0 / 1.1)

    def test_capacity_violation_picks_overcommitted_victim(self):
        gpu = GPU("g", mem_capacity_mb=10_000)
        gpu.attach("honest", 6_000)
        gpu.attach("burster", 3_000)
        _, _, violation = gpu.arbitrate(
            {"honest": demand(mem=6_000), "burster": demand(mem=5_000)}
        )
        assert violation is not None
        assert violation.victim_uid == "burster"  # over its reservation
        assert violation.demanded_mb == pytest.approx(11_000)

    def test_capacity_violation_falls_back_to_youngest(self):
        gpu = GPU("g", mem_capacity_mb=10_000)
        gpu.attach("old", 5_000)
        gpu.attach("young", 5_000)
        # both burst equally past their reservations: the most recently
        # attached container dies
        _, _, violation = gpu.arbitrate({"old": demand(mem=5_500), "young": demand(mem=5_500)})
        assert violation.victim_uid == "young"

    def test_pcie_saturates_at_link_rate(self):
        gpu = GPU("g", pcie_mbps=10_000)
        gpu.attach("a", 100)
        gpu.attach("b", 100)
        _, sample, _ = gpu.arbitrate({"a": demand(rx=8_000), "b": demand(rx=8_000)})
        assert sample.rx_mbps == 10_000

    def test_power_tracks_delivered_compute(self):
        """Stalled cycles don't draw peak dynamic power."""
        gpu = GPU("g", interference_alpha=1.0)
        gpu.attach("a", 100)
        gpu.attach("b", 100)
        _, contended, _ = gpu.arbitrate({"a": demand(sm=1.0), "b": demand(sm=1.0)})
        gpu2 = GPU("g2", interference_alpha=1.0)
        gpu2.attach("a", 100)
        _, solo, _ = gpu2.arbitrate({"a": demand(sm=1.0)})
        assert contended.power_w < solo.power_w

    def test_unknown_pod_demand_rejected(self):
        gpu = GPU("g")
        with pytest.raises(KeyError):
            gpu.arbitrate({"ghost": demand()})

    def test_idle_sample_reflects_sleep(self):
        gpu = GPU("g")
        awake = gpu.idle_sample().power_w
        gpu.sleep()
        asleep = gpu.idle_sample().power_w
        assert asleep < awake

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=8),
        st.floats(min_value=0.0, max_value=2.0),
    )
    def test_shares_bounded_and_positive(self, sms, alpha):
        gpu = GPU("g", interference_alpha=alpha)
        demands = {}
        for i, s in enumerate(sms):
            gpu.attach(f"p{i}", 10.0)
            demands[f"p{i}"] = demand(sm=s, mem=10.0)
        shares, sample, _ = gpu.arbitrate(demands)
        assert all(0.0 < v <= 1.0 for v in shares.values())
        assert 0.0 <= sample.sm_util <= 1.0
