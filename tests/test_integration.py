"""Cross-module integration tests: the paper's headline claims in small.

These drive the full stack (workload generator -> Kube-Knots ->
simulator -> metrics) at reduced scale and assert the *directions* the
paper reports.  The full-scale numbers live in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedulers import make_scheduler
from repro.metrics.percentiles import cluster_percentiles
from repro.sim.simulator import run_appmix

DURATION_S = 12.0
SEED = 1


@pytest.fixture(scope="module")
def mix1_results():
    return {
        name: run_appmix("app-mix-1", make_scheduler(name), duration_s=DURATION_S, seed=SEED)
        for name in ("uniform", "res-ag", "cbp", "peak-prediction")
    }


class TestHeadlineClaims:
    def test_everything_completes(self, mix1_results):
        for name, result in mix1_results.items():
            assert len(result.completed()) == len(result.pods), name

    def test_pp_improves_utilization_over_resag(self, mix1_results):
        """Abstract: CBP/PP improve cluster-wide GPU utilization."""
        pp = cluster_percentiles(mix1_results["peak-prediction"].gpu_util_series)
        ra = cluster_percentiles(mix1_results["res-ag"].gpu_util_series)
        assert pp.p50 > ra.p50

    def test_knots_schedulers_guard_qos(self, mix1_results):
        """Abstract: PP reduces QoS violations vs GPU-agnostic sharing."""
        pp = mix1_results["peak-prediction"].qos_violations_per_kilo()
        cbp = mix1_results["cbp"].qos_violations_per_kilo()
        ra = mix1_results["res-ag"].qos_violations_per_kilo()
        uni = mix1_results["uniform"].qos_violations_per_kilo()
        assert pp <= max(ra, uni)
        assert cbp <= max(ra, uni)

    def test_pp_saves_energy_vs_uniform(self, mix1_results):
        """Abstract: cluster-wide energy savings vs GPU-agnostic scheduling."""
        pp_power = mix1_results["peak-prediction"].total_energy_j() / mix1_results[
            "peak-prediction"
        ].makespan_ms
        uni_power = mix1_results["uniform"].total_energy_j() / mix1_results["uniform"].makespan_ms
        assert pp_power < uni_power

    def test_knots_schedulers_crash_least(self, mix1_results):
        pp = mix1_results["peak-prediction"].oom_kills
        cbp = mix1_results["cbp"].oom_kills
        assert pp <= 2 and cbp <= 2

    def test_sharing_improves_turnaround(self, mix1_results):
        """Sec. IV-B: sharing improves job turnaround over exclusive."""
        shared = np.median(mix1_results["peak-prediction"].jcts_ms())
        exclusive = np.median(mix1_results["uniform"].jcts_ms())
        assert shared <= exclusive * 1.5


class TestLowLoadConsolidation:
    def test_pp_sleeps_devices_on_mix3(self):
        result = run_appmix(
            "app-mix-3", make_scheduler("peak-prediction"), duration_s=DURATION_S, seed=SEED
        )
        uniform = run_appmix(
            "app-mix-3", make_scheduler("uniform"), duration_s=DURATION_S, seed=SEED
        )
        pp_power = result.total_energy_j() / result.makespan_ms
        uni_power = uniform.total_energy_j() / uniform.makespan_ms
        # Fig. 11a: consolidation + p_state 12 pays off most at low load
        assert pp_power < 0.9 * uni_power

    def test_pp_uses_fewer_devices_than_uniform(self):
        pp = run_appmix(
            "app-mix-3", make_scheduler("peak-prediction"), duration_s=DURATION_S, seed=SEED
        )
        busy = sum(1 for s in pp.gpu_util_series.values() if np.asarray(s).max() > 0)
        assert busy < 10
