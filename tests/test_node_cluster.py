"""Tests for node and cluster containers."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, make_heterogeneous_cluster, make_paper_cluster
from repro.cluster.node import GPU_MODELS, GpuNode, HostSpec


class TestGpuNode:
    def test_build_names_gpus_by_node(self):
        node = GpuNode.build("node1", gpu_model="P100", num_gpus=2)
        assert [g.gpu_id for g in node.gpus] == ["node1/gpu0", "node1/gpu1"]

    def test_build_applies_model_spec(self):
        node = GpuNode.build("n", gpu_model="V100")
        assert node.gpus[0].mem_capacity_mb == GPU_MODELS["V100"].mem_mb

    def test_needs_at_least_one_gpu(self):
        with pytest.raises(ValueError):
            GpuNode("n", gpus=[])

    def test_find_gpu(self):
        node = GpuNode.build("n", num_gpus=2)
        assert node.find_gpu("n/gpu1").gpu_id == "n/gpu1"
        with pytest.raises(KeyError):
            node.find_gpu("n/gpu9")

    def test_free_memory_aggregates(self):
        node = GpuNode.build("n", num_gpus=2)
        node.gpus[0].attach("p", 1_000)
        assert node.free_gpu_mem_mb == node.total_gpu_mem_mb - 1_000
        assert node.num_containers == 1

    def test_is_active_tracks_sleep(self):
        node = GpuNode.build("n", num_gpus=1)
        assert node.is_active()
        node.gpus[0].sleep()
        assert not node.is_active()

    def test_default_host_spec(self):
        node = GpuNode.build("n")
        assert isinstance(node.host, HostSpec)
        assert node.host.dram_gb == 192  # Table II


class TestCluster:
    def test_paper_cluster_shape(self):
        cluster = make_paper_cluster()
        assert len(cluster) == 10
        assert sum(1 for _ in cluster.gpus()) == 10
        assert cluster.head.node_id == "head"

    def test_duplicate_node_ids_rejected(self):
        n = GpuNode.build("dup")
        m = GpuNode.build("dup")
        with pytest.raises(ValueError):
            Cluster([n, m])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_node_lookup(self):
        cluster = make_paper_cluster(num_nodes=3)
        assert cluster.node("node2").node_id == "node2"
        with pytest.raises(KeyError):
            cluster.node("node99")

    def test_find_gpu_routes_by_prefix(self):
        cluster = make_paper_cluster(num_nodes=3)
        assert cluster.find_gpu("node3/gpu0").gpu_id == "node3/gpu0"

    def test_active_gpus_excludes_sleepers(self):
        cluster = make_paper_cluster(num_nodes=3)
        cluster.find_gpu("node1/gpu0").sleep()
        active = cluster.active_gpus()
        assert len(active) == 2
        assert all(g.gpu_id != "node1/gpu0" for g in active)

    def test_heterogeneous_cluster_models(self):
        cluster = make_heterogeneous_cluster(["P100", "K80"])
        caps = [g.mem_capacity_mb for g in cluster.gpus()]
        assert caps == [GPU_MODELS["P100"].mem_mb, GPU_MODELS["K80"].mem_mb]

    def test_heterogeneous_unknown_model(self):
        with pytest.raises(KeyError):
            make_heterogeneous_cluster(["P100", "H100"])

    def test_total_memory(self):
        cluster = make_paper_cluster(num_nodes=2)
        assert cluster.total_gpu_mem_mb() == 2 * 16_384
