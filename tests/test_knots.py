"""Tests for the Knots runtime (monitoring plane glue)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.knots import Knots, KnotsConfig
from repro.workloads.base import ResourceDemand


@pytest.fixture
def knots():
    cluster = make_paper_cluster(num_nodes=2)
    return cluster, Knots(cluster, KnotsConfig(heartbeat_ms=10.0, window_ms=100.0))


def run_load(cluster, n_ticks, knots):
    gpu = cluster.find_gpu("node1/gpu0")
    if "p" not in gpu.containers:
        gpu.attach("p", 2_000)
    for t in range(n_ticks):
        for g in cluster.gpus():
            demands = (
                {"p": ResourceDemand(sm=0.6, mem_mb=1_000, tx_mbps=0, rx_mbps=0)}
                if g.gpu_id == "node1/gpu0"
                else {}
            )
            g.arbitrate(demands)
        knots.heartbeat(float(t * 10))


class TestMonitoring:
    def test_heartbeat_feeds_all_nodes(self, knots):
        cluster, k = knots
        run_load(cluster, 5, k)
        for node_id in ("node1", "node2"):
            assert f"{node_id}/gpu0.sm_util" in k.monitors[node_id].tsdb

    def test_query_returns_five_metric_windows(self, knots):
        cluster, k = knots
        run_load(cluster, 5, k)
        stats = k.query("node1/gpu0", now=40.0)
        assert set(stats) == {"sm_util", "mem_util", "power_w", "tx_mbps", "rx_mbps"}
        assert stats["sm_util"].latest() == pytest.approx(0.6)

    def test_memory_window_is_mem_util(self, knots):
        cluster, k = knots
        run_load(cluster, 5, k)
        w = k.memory_window("node1/gpu0", now=40.0)
        assert w.latest() == pytest.approx(1_000 / 16_384)

    def test_window_length_respects_config(self, knots):
        cluster, k = knots
        run_load(cluster, 30, k)   # 300 ms of samples, window is 100 ms
        w = k.memory_window("node1/gpu0", now=290.0)
        assert len(w) == 11


class TestDeviceLists:
    def test_active_sorted_by_free_memory(self, knots):
        cluster, k = knots
        run_load(cluster, 2, k)
        order = [v.gpu_id for v in k.active_gpus_by_free_memory()]
        assert order == ["node2/gpu0", "node1/gpu0"]

    def test_sleeping_devices_excluded_from_active(self, knots):
        cluster, k = knots
        cluster.find_gpu("node2/gpu0").sleep()
        active = k.active_gpus_by_free_memory()
        assert [v.gpu_id for v in active] == ["node1/gpu0"]
        everything = k.all_gpus_by_free_memory()
        assert len(everything) == 2

    def test_profiles_store_attached(self, knots):
        _, k = knots
        assert not k.profiles.images()
