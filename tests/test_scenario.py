"""Tests for the scenario engine (repro.scenario).

Covers the frozen vocabulary and registry, capacity-event generation,
the network fabric's contended transfer costs, the gang-mix workload
rewrite, all-or-nothing gang placement, and the orchestrator's
cordon/reclaim/restore transitions with gang co-eviction.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Bind
from repro.kube.api import EventType
from repro.kube.pod import GangSpec, PodPhase
from repro.scenario import (
    SCENARIOS,
    CapacityPattern,
    GangMix,
    GangScheduler,
    NetworkFabric,
    NetworkModel,
    Scenario,
    apply_gang_mix,
    build_capacity_events,
    make_scenario,
)
from tests.conftest import make_spec


class TestSpec:
    def test_registry_names(self):
        assert set(SCENARIOS) == {"default", "diurnal", "spot", "gang", "diurnal-gang"}
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_default_scenario_is_inert(self):
        assert make_scenario("default").is_default()
        assert not make_scenario("diurnal").is_default()
        assert not make_scenario("gang").is_default()

    def test_unknown_name_lists_catalog(self):
        with pytest.raises(KeyError, match="diurnal"):
            make_scenario("nope")

    def test_scenarios_are_frozen_and_picklable(self):
        for scenario in SCENARIOS.values():
            assert pickle.loads(pickle.dumps(scenario)) == scenario
            with pytest.raises(AttributeError):
                scenario.name = "x"

    def test_repr_is_canonical(self):
        # The sweep cache keys on the repr of the embedding task.
        assert repr(Scenario()) == repr(make_scenario("default"))


class TestCapacityEvents:
    NODES = [f"node{i}" for i in range(1, 9)]

    def test_diurnal_windows_drain_then_reclaim_then_restore(self):
        pattern = CapacityPattern(kind="diurnal", period_ms=1_000.0,
                                  amplitude=0.25, drain_ms=100.0)
        events = build_capacity_events(pattern, self.NODES, horizon_ms=2_000.0)
        by_node: dict[str, list] = {}
        for e in events:
            by_node.setdefault(e.node_id, []).append(e)
        # amplitude 0.25 of 8 nodes = 2 nodes per window, rotating.
        dipped = [n for n, evs in by_node.items() if evs]
        assert len(dipped) == 4
        for evs in by_node.values():
            kinds = [e.kind for e in evs]
            assert kinds == ["drain", "reclaim", "restore"]
            drain, reclaim, restore = evs
            assert drain.at_ms == reclaim.at_ms - 100.0
            assert restore.at_ms > reclaim.at_ms

    def test_events_sorted_by_time_then_kind(self):
        pattern = CapacityPattern(kind="diurnal", period_ms=1_000.0)
        events = build_capacity_events(pattern, self.NODES, horizon_ms=4_000.0)
        order = {"drain": 0, "reclaim": 1, "restore": 2}
        keys = [(e.at_ms, order[e.kind], e.node_id) for e in events]
        assert keys == sorted(keys)

    def test_spares_start_drained_and_cover_windows(self):
        pattern = CapacityPattern(kind="diurnal", period_ms=1_000.0,
                                  amplitude=0.25, spare_nodes=1)
        events = build_capacity_events(pattern, self.NODES, horizon_ms=1_000.0)
        spare = self.NODES[-1]
        spare_events = [e for e in events if e.node_id == spare]
        assert spare_events[0].kind == "drain" and spare_events[0].at_ms == 0.0
        # The spare is restored when the window opens, re-drained at its end.
        assert [e.kind for e in spare_events[1:3]] == ["restore", "drain"]

    def test_spot_is_deterministic_and_node_granular(self):
        pattern = CapacityPattern(kind="spot", period_ms=500.0, seed=42)
        a = build_capacity_events(pattern, self.NODES, horizon_ms=5_000.0)
        b = build_capacity_events(pattern, self.NODES, horizon_ms=5_000.0)
        assert a == b
        assert any(e.kind == "reclaim" for e in a)
        different = build_capacity_events(replace(pattern, seed=7), self.NODES, 5_000.0)
        assert different != a

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            build_capacity_events(CapacityPattern(kind="lunar"), self.NODES, 1_000.0)


class TestNetworkFabric:
    def test_pull_cost_is_latency_plus_size_over_bandwidth(self):
        model = NetworkModel(
            nic=replace(NetworkModel().nic, bandwidth_mbps=1_000.0, latency_ms=1.0),
            uplink=replace(NetworkModel().uplink, bandwidth_mbps=4_000.0, latency_ms=2.0),
            image_size_mb=500.0,
        )
        fabric = NetworkFabric(model, ["node1"])
        # Uncontended: 1 + 2 ms latency + 500 MB / 1000 MB/s = 503 ms.
        assert fabric.pull_ms("node1", 0.0) == pytest.approx(503.0)

    def test_concurrent_pulls_contend(self):
        fabric = NetworkFabric(NetworkModel(), ["node1", "node2"])
        first = fabric.pull_ms("node1", 0.0)
        second = fabric.pull_ms("node1", 0.0)   # NIC now shared two ways
        assert second > first
        # After both complete the link is free again.
        later = fabric.pull_ms("node1", first + second + 1.0)
        assert later == pytest.approx(first)

    def test_rack_assignment_is_consecutive(self):
        nodes = [f"node{i}" for i in range(1, 18)]
        fabric = NetworkFabric(NetworkModel(rack_size=8), nodes)
        assert fabric.rack_of["node1"] == 0
        assert fabric.rack_of["node8"] == 0
        assert fabric.rack_of["node9"] == 1
        assert fabric.rack_of["node17"] == 2

    def test_migration_pause_scales_with_gang_size(self):
        fabric = NetworkFabric(NetworkModel(), [])
        assert fabric.migration_pause_s(4) > fabric.migration_pause_s(1) > 0.0

    def test_locality_penalty_is_capped(self):
        slow = NetworkModel(
            nic=replace(NetworkModel().nic, latency_ms=100.0),
        )
        assert NetworkFabric(slow, []).locality_penalty() == 0.25
        assert 0.0 < NetworkFabric(NetworkModel(), []).locality_penalty() < 0.25


class TestApplyGangMix:
    def _workload(self, n=20):
        return [(50.0 * i, make_spec(f"b{i}", duration_ms=300.0)) for i in range(n)]

    def test_deterministic_and_partial(self):
        mix = GangMix(fraction=0.5, seed=3)
        a = apply_gang_mix(self._workload(), mix)
        b = apply_gang_mix(self._workload(), mix)
        assert [(t, s.name) for t, s in a] == [(t, s.name) for t, s in b]
        ganged = [s for _, s in a if s.gang is not None]
        singles = [s for _, s in a if s.gang is None]
        assert ganged and singles

    def test_members_share_instant_and_gang_id(self):
        out = apply_gang_mix(self._workload(), GangMix(fraction=1.0, sizes=(3,), probs=(1.0,)))
        by_gang: dict[str, list] = {}
        for at_ms, spec in out:
            assert spec.gang is not None
            by_gang.setdefault(spec.gang.gang_id, []).append((at_ms, spec))
        for members in by_gang.values():
            assert len(members) == 3
            assert len({t for t, _ in members}) == 1
            assert sorted(s.gang.rank for _, s in members) == [0, 1, 2]
            assert all(s.gang.size == 3 for _, s in members)

    def test_latency_critical_pods_never_converted(self):
        workload = [(0.0, make_spec("q", qos_threshold_ms=100.0))]
        out = apply_gang_mix(workload, GangMix(fraction=1.0))
        assert out[0][1].gang is None

    def test_zero_fraction_is_identity(self):
        workload = self._workload()
        assert apply_gang_mix(workload, GangMix(fraction=0.0)) == workload


class TestGangScheduler:
    def _gang_pods(self, kk, size, mem_mb=2_000.0, gang_id="gang-0", now=0.0):
        pods = []
        for rank in range(size):
            spec = make_spec(f"g{rank}", duration_ms=5_000.0, mem_mb=mem_mb,
                             requested_mem_mb=mem_mb)
            spec = replace(spec, gang=GangSpec(gang_id=gang_id, size=size, rank=rank))
            pods.append(kk.api.submit(spec, now))
        return pods

    def test_gang_lands_on_one_node_when_it_fits(self):
        cluster = make_paper_cluster(num_nodes=3, gpus_per_node=2)
        kk = KubeKnots(cluster, GangScheduler(make_scheduler("cbp")))
        self._gang_pods(kk, size=2)
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert len(binds) == 2
        nodes = {b.gpu_id.split("/", 1)[0] for b in binds}
        assert len(nodes) == 1

    def test_all_or_nothing(self):
        # 2 nodes x 1 GPU: a 4-gang can never fit; nothing may bind.
        cluster = make_paper_cluster(num_nodes=2, gpus_per_node=1)
        kk = KubeKnots(cluster, GangScheduler(make_scheduler("cbp")))
        pods = self._gang_pods(kk, size=4)
        actions = kk.scheduling_pass(0.0)
        assert [a for a in actions if isinstance(a, Bind)] == []
        assert all(p.phase is PodPhase.PENDING for p in pods)

    def test_gang_spans_nodes_when_no_node_fits(self):
        cluster = make_paper_cluster(num_nodes=4, gpus_per_node=1)
        kk = KubeKnots(cluster, GangScheduler(make_scheduler("cbp")))
        self._gang_pods(kk, size=3)
        binds = [a for a in kk.scheduling_pass(0.0) if isinstance(a, Bind)]
        assert len(binds) == 3
        assert len({b.gpu_id for b in binds}) == 3

    def test_no_gangs_delegates_to_inner_unchanged(self):
        specs = [make_spec(f"p{i}") for i in range(3)]
        results = []
        for wrap in (False, True):
            cluster = make_paper_cluster(num_nodes=3)
            scheduler = make_scheduler("cbp")
            if wrap:
                scheduler = GangScheduler(scheduler)
            kk = KubeKnots(cluster, scheduler)
            for spec in specs:
                kk.api.submit(spec, 0.0)
            results.append(
                [(a.gpu_id, a.alloc_mb)
                 for a in kk.scheduling_pass(0.0) if isinstance(a, Bind)]
            )
        assert results[0] == results[1]

    def test_name_and_sharing_follow_inner(self):
        inner = make_scheduler("peak-prediction")
        wrapped = GangScheduler(inner)
        assert wrapped.name == "gang+peak-prediction"
        assert wrapped.requires_sharing == inner.requires_sharing


class TestCapacityTransitions:
    def test_cordoned_node_accepts_no_new_placements(self):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"))
        assert kk.cordon_node("node1")
        kk.api.submit(make_spec(), 0.0)
        binds = [a for a in kk.scheduling_pass(0.0) if isinstance(a, Bind)]
        assert binds and all(b.gpu_id.startswith("node2/") for b in binds)
        # Idempotent-tolerant: a second drain reports nothing changed.
        assert not kk.cordon_node("node1")
        kk.uncordon_node("node1")
        assert not cluster.find_gpu("node1/gpu0").cordoned

    def test_reclaim_evicts_requeues_and_fails(self):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"))
        pod = kk.api.submit(make_spec(duration_ms=5_000.0), 0.0)
        kk.scheduling_pass(0.0)
        node = pod.node_id
        assert kk.reclaim_node(node, 10.0)
        assert pod.phase is PodPhase.PENDING
        assert pod.restart_count == 1
        assert len(kk.api.events_of(EventType.EVICTED)) == 1
        assert all(g.failed for g in kk.kubelets[node].node.gpus)
        assert not kk.reclaim_node(node, 20.0)     # already reclaimed

    def test_restore_brings_node_back(self):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"))
        kk.reclaim_node("node1", 0.0)
        kk.restore_node("node1")
        gpu = cluster.find_gpu("node1/gpu0")
        assert not gpu.failed and not gpu.cordoned
        assert gpu.can_fit(1.0)

    def test_reclaim_coevicts_gang_siblings_on_other_nodes(self):
        cluster = make_paper_cluster(num_nodes=3, gpus_per_node=1)
        kk = KubeKnots(cluster, GangScheduler(make_scheduler("cbp")))
        pods = TestGangScheduler()._gang_pods(kk, size=3, mem_mb=2_000.0)
        kk.scheduling_pass(0.0)
        assert all(p.node_id is not None for p in pods)
        victim_node = pods[0].node_id
        kk.reclaim_node(victim_node, 10.0)
        # Every member — including those hosted elsewhere — is requeued.
        assert all(p.phase is PodPhase.PENDING for p in pods)
        assert kk.api.num_pending() == 3

    def test_gang_coevicted_on_device_failure_during_step(self):
        cluster = make_paper_cluster(num_nodes=3, gpus_per_node=1)
        kk = KubeKnots(cluster, GangScheduler(make_scheduler("cbp")))
        pods = TestGangScheduler()._gang_pods(kk, size=2, mem_mb=2_000.0)
        kk.scheduling_pass(0.0)
        cluster.find_gpu(pods[0].gpu_id).fail()
        kk.step_kubelets(10.0, 10.0)
        assert all(p.phase is PodPhase.PENDING for p in pods)

    def test_sanitizer_checks_pass_on_clean_transitions(self, sanitized_obs):
        cluster = make_paper_cluster(num_nodes=2)
        kk = KubeKnots(cluster, make_scheduler("cbp"), obs=sanitized_obs)
        pod = kk.api.submit(make_spec(duration_ms=5_000.0), 0.0)
        kk.scheduling_pass(0.0)
        kk.reclaim_node(pod.node_id, 10.0)
        kk.restore_node("node1")
        assert sanitized_obs.sanitizer.violations == []

    def test_sanitizer_flags_silently_dropped_pod(self):
        from repro.analysis.sanitizer import Sanitizer, SanitizerError

        san = Sanitizer()
        with pytest.raises(SanitizerError, match="capacity_conservation"):
            san.check_pod_tracking({"pod-1", "pod-2"}, {"pod-1"}, set())

    def test_sanitizer_flags_allocations_on_failed_device(self):
        from repro.analysis.sanitizer import Sanitizer, SanitizerError
        from repro.cluster.gpu import GPU
        from repro.cluster.node import GpuNode

        node = GpuNode("n", [GPU("n/gpu0")])
        gpu = node.gpus[0]
        gpu.attach("pod-1", 100.0)
        gpu._failed = True   # corrupt: failed with residents still attached
        san = Sanitizer()
        with pytest.raises(SanitizerError, match="capacity_conservation"):
            san.check_node_capacity(node)
