"""Tests for the heterogeneity-aware PP extension."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_heterogeneous_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import HeteroAwarePeakPrediction, make_scheduler
from repro.core.schedulers.base import Bind
from repro.experiments.hetero import run_hetero
from tests.conftest import make_spec, make_trace


def build(models=("K80", "P100", "V100")):
    cluster = make_heterogeneous_cluster(models)
    return cluster, KubeKnots(cluster, make_scheduler("hetero-pp"))


def learn(kk, image, mem_mb, peak_mem_mb):
    for _ in range(2):
        kk.knots.profiles.record_trace(image, make_trace(mem_mb=mem_mb, peak_mem_mb=peak_mem_mb))


class TestSpillProtection:
    def test_big_pod_never_lands_on_small_device(self):
        cluster, kk = build()
        learn(kk, "img/big", mem_mb=3_000, peak_mem_mb=13_000)
        pod = kk.api.submit(
            make_spec(image="img/big", mem_mb=3_000, peak_mem_mb=13_000,
                      requested_mem_mb=14_000.0),
            0.0,
        )
        actions = kk.scheduling_pass(0.0)
        bind = next(a for a in actions if isinstance(a, Bind))
        # node1 is the 12 GB K80; the 13 GB peak cannot fit it
        assert bind.gpu_id != "node1/gpu0"

    def test_wake_path_respects_peak(self):
        cluster, kk = build(("K80", "P100"))
        for gpu in cluster.gpus():
            gpu.sleep()
        learn(kk, "img/big", mem_mb=3_000, peak_mem_mb=13_000)
        kk.api.submit(
            make_spec(image="img/big", mem_mb=3_000, peak_mem_mb=13_000,
                      requested_mem_mb=14_000.0),
            0.0,
        )
        actions = kk.scheduling_pass(0.0)
        binds = [a for a in actions if isinstance(a, Bind)]
        assert binds and binds[0].gpu_id == "node2/gpu0"   # the P100

    def test_small_pod_keeps_big_devices_free(self):
        """Best-capacity-fit: small batch pods go to the smallest device."""
        cluster, kk = build(("V100", "K80"))
        pod = kk.api.submit(make_spec(mem_mb=1_000, requested_mem_mb=2_000.0), 0.0)
        actions = kk.scheduling_pass(0.0)
        bind = next(a for a in actions if isinstance(a, Bind))
        assert bind.gpu_id == "node2/gpu0"   # the K80, not the 32 GB V100

    def test_oversized_pod_waits_rather_than_spill(self):
        cluster, kk = build(("K80",))
        learn(kk, "img/big", mem_mb=3_000, peak_mem_mb=13_000)
        pod = kk.api.submit(
            make_spec(image="img/big", mem_mb=3_000, peak_mem_mb=13_000,
                      requested_mem_mb=3_500.0),
            0.0,
        )
        actions = kk.scheduling_pass(0.0)
        assert not [a for a in actions if isinstance(a, Bind)]


class TestEndToEnd:
    def test_extension_eliminates_spill_ooms(self):
        results = run_hetero(seed=0)
        assert results["hetero-pp"].oom_kills <= results["peak-prediction"].oom_kills
        assert results["hetero-pp"].oom_kills == 0
        for r in results.values():
            assert len(r.completed()) == len(r.pods)

    def test_registry_exposes_extension(self):
        sched = make_scheduler("hetero-pp", peak_headroom=1.2)
        assert isinstance(sched, HeteroAwarePeakPrediction)
        assert sched.peak_headroom == 1.2
