"""Tests for pod lifecycle and derived metrics."""

from __future__ import annotations

import pytest

from repro.kube.pod import Pod, PodPhase
from repro.workloads.base import QoSClass
from tests.conftest import make_spec


def make_pod(**kwargs) -> Pod:
    return Pod(spec=make_spec(**kwargs))


class TestLifecycle:
    def test_submission(self):
        pod = make_pod()
        pod.mark_submitted(10.0)
        assert pod.phase is PodPhase.PENDING
        assert pod.submitted_ms == 10.0

    def test_resubmission_keeps_first_timestamp(self):
        pod = make_pod()
        pod.mark_submitted(10.0)
        pod.mark_submitted(50.0)
        assert pod.submitted_ms == 10.0

    def test_schedule_start_finish(self):
        pod = make_pod()
        pod.mark_submitted(0.0)
        pod.mark_scheduled(5.0, "node1", "node1/gpu0", 1_000.0)
        pod.mark_running(7.0)
        pod.mark_succeeded(107.0)
        assert pod.done
        assert pod.jct_ms() == 107.0
        assert pod.queueing_ms() == 5.0

    def test_unfinished_jct_raises(self):
        pod = make_pod()
        pod.mark_submitted(0.0)
        with pytest.raises(ValueError):
            pod.jct_ms()

    def test_oom_kill_resets_placement_and_progress(self):
        pod = make_pod()
        pod.mark_submitted(0.0)
        pod.mark_scheduled(1.0, "node1", "node1/gpu0", 1_000.0)
        pod.mark_running(2.0)
        pod.progress_ms = 50.0
        pod.mark_oom_killed()
        assert pod.phase is PodPhase.OOM_KILLED
        assert pod.node_id is None and pod.gpu_id is None
        assert pod.progress_ms == 0.0
        assert pod.restart_count == 1

    def test_remaining_work(self):
        pod = make_pod(duration_ms=100.0)
        pod.progress_ms = 30.0
        assert pod.remaining_ms() == pytest.approx(70.0)
        pod.progress_ms = 200.0
        assert pod.remaining_ms() == 0.0

    def test_uids_unique(self):
        assert make_pod().uid != make_pod().uid


class TestQoS:
    def test_batch_never_violates(self):
        pod = make_pod()
        pod.mark_submitted(0.0)
        pod.mark_succeeded(1e9)
        assert not pod.violates_qos()

    def test_latency_pod_within_threshold(self):
        pod = make_pod(qos_threshold_ms=150.0)
        pod.mark_submitted(0.0)
        pod.mark_succeeded(100.0)
        assert pod.spec.qos_class is QoSClass.LATENCY_CRITICAL
        assert not pod.violates_qos()

    def test_latency_pod_over_threshold(self):
        pod = make_pod(qos_threshold_ms=150.0)
        pod.mark_submitted(0.0)
        pod.mark_succeeded(200.0)
        assert pod.violates_qos()

    def test_unfinished_pod_not_counted(self):
        pod = make_pod(qos_threshold_ms=150.0)
        pod.mark_submitted(0.0)
        assert not pod.violates_qos()
