"""Tests for the workload trace model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace


def phases_from(spec):
    return [
        Phase(d, ResourceDemand(sm=s, mem_mb=m, tx_mbps=0.0, rx_mbps=0.0))
        for d, s, m in spec
    ]


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace("t", [])

    def test_bad_phase_duration(self):
        with pytest.raises(ValueError):
            Phase(0.0, ResourceDemand(0.1, 10, 0, 0))

    def test_bad_sm_demand(self):
        with pytest.raises(ValueError):
            Phase(1.0, ResourceDemand(1.5, 10, 0, 0))

    def test_negative_memory(self):
        with pytest.raises(ValueError):
            Phase(1.0, ResourceDemand(0.1, -5, 0, 0))


class TestDemandLookup:
    def test_demand_at_selects_phase(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.1, 100), (20, 0.5, 500)]))
        assert trace.demand_at(5).mem_mb == 100
        assert trace.demand_at(15).mem_mb == 500

    def test_demand_at_boundary_belongs_to_next_phase(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.1, 100), (20, 0.5, 500)]))
        assert trace.demand_at(10).mem_mb == 500

    def test_demand_past_end_holds_last(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.1, 100)]))
        assert trace.demand_at(999).mem_mb == 100

    def test_negative_progress_rejected(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.1, 100)]))
        with pytest.raises(ValueError):
            trace.demand_at(-1)

    def test_total_is_sum_of_durations(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.1, 1), (15, 0.2, 2), (5, 0.3, 3)]))
        assert trace.total_ms == 30


class TestStatistics:
    def test_peak_and_percentile(self):
        # 90 ms at 100 MB, 10 ms at 1000 MB
        trace = WorkloadTrace("t", phases_from([(90, 0.1, 100), (10, 0.9, 1000)]))
        assert trace.peak_mem_mb() == 1000
        assert trace.mem_percentile(80) == 100   # peak occupies only 10 %
        assert trace.mem_percentile(95) == 1000

    def test_mean_duration_weighted(self):
        trace = WorkloadTrace("t", phases_from([(90, 0.1, 100), (10, 0.9, 1000)]))
        assert trace.mean_mem_mb() == pytest.approx(0.9 * 100 + 0.1 * 1000)

    def test_requested_defaults_to_peak(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.5, 700)]))
        assert trace.requested_mem_mb == 700

    def test_requested_override(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.5, 700)]), requested_mem_mb=50)
        assert trace.requested_mem_mb == 50

    def test_percentile_bounds_validated(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.5, 700)]))
        with pytest.raises(ValueError):
            trace.mem_percentile(101)

    def test_default_qos_is_batch(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.5, 700)]))
        assert trace.qos_class is QoSClass.BATCH

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=10_000.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_percentile_bounded_by_extremes(self, spec, q):
        trace = WorkloadTrace("t", phases_from(spec))
        p = trace.mem_percentile(q)
        mems = [m for _, _, m in spec]
        assert min(mems) <= p <= max(mems)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=10_000.0),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_percentile_monotone_in_q(self, spec):
        trace = WorkloadTrace("t", phases_from(spec))
        values = [trace.mem_percentile(q) for q in (10, 50, 80, 100)]
        assert values == sorted(values)


class TestSampling:
    def test_sample_series_length(self):
        trace = WorkloadTrace("t", phases_from([(100, 0.3, 500)]))
        series = trace.sample_series(step_ms=10)
        assert len(series["sm"]) == 10
        assert set(series) == {"sm", "mem_mb", "tx_mbps", "rx_mbps"}

    def test_sample_series_values(self):
        trace = WorkloadTrace("t", phases_from([(50, 0.2, 100), (50, 0.8, 900)]))
        series = trace.sample_series(step_ms=25)
        assert list(series["mem_mb"]) == [100, 100, 900, 900]

    def test_bad_step_rejected(self):
        trace = WorkloadTrace("t", phases_from([(10, 0.5, 1)]))
        with pytest.raises(ValueError):
            trace.sample_series(0.0)
