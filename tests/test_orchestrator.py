"""Tests for the Kube-Knots orchestrator (action application)."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import UniformScheduler, make_scheduler
from repro.core.schedulers.base import Bind, Resize, Sleep, Wake
from repro.kube.pod import PodPhase
from tests.conftest import make_spec


@pytest.fixture
def kk():
    return KubeKnots(make_paper_cluster(num_nodes=2), make_scheduler("peak-prediction"))


class TestActionApplication:
    def test_bind_routes_to_kubelet(self, kk):
        pod = kk.api.submit(make_spec(), 0.0)
        kk._apply(Bind(pod.uid, "node1/gpu0", 1_000.0), 0.0)
        assert pod.phase is PodPhase.SCHEDULED
        assert kk.kubelets["node1"].num_hosted() == 1
        assert kk.cluster.find_gpu("node1/gpu0").allocated_mem_mb == 1_000.0

    def test_resize_routes_to_plugin(self, kk):
        pod = kk.api.submit(make_spec(), 0.0)
        kk._apply(Bind(pod.uid, "node1/gpu0", 4_000.0), 0.0)
        kk._apply(Resize(pod.uid, "node1/gpu0", 1_500.0), 1.0)
        assert pod.alloc_mb == 1_500.0
        assert kk.cluster.find_gpu("node1/gpu0").allocated_mem_mb == 1_500.0

    def test_sleep_and_wake(self, kk):
        gpu = kk.cluster.find_gpu("node2/gpu0")
        kk._apply(Sleep("node2/gpu0"), 0.0)
        assert gpu.asleep
        kk._apply(Wake("node2/gpu0"), 1.0)
        assert not gpu.asleep

    def test_sleep_skipped_for_occupied_device(self, kk):
        pod = kk.api.submit(make_spec(), 0.0)
        kk._apply(Bind(pod.uid, "node1/gpu0", 100.0), 0.0)
        kk._apply(Sleep("node1/gpu0"), 1.0)
        assert not kk.cluster.find_gpu("node1/gpu0").asleep


class TestContext:
    def test_context_sees_residents(self, kk):
        pod = kk.api.submit(make_spec(image="img/x"), 0.0)
        kk._apply(Bind(pod.uid, "node1/gpu0", 500.0), 0.0)
        ctx = kk.build_context(1.0)
        residents = ctx.residents_on("node1/gpu0")
        assert len(residents) == 1
        assert residents[0].image == "img/x"
        assert residents[0].alloc_mb == 500.0

    def test_context_lists_pending(self, kk):
        kk.api.submit(make_spec("a"), 0.0)
        kk.api.submit(make_spec("b"), 0.0)
        ctx = kk.build_context(0.0)
        assert len(ctx.pending) == 2


class TestExecutionLoop:
    def test_completed_pod_feeds_profiles(self, kk):
        for node in kk.kubelets.values():
            node.prewarm({"img/learn"})
        pod = kk.api.submit(make_spec(image="img/learn", duration_ms=40.0), 0.0)
        kk.scheduling_pass(0.0)
        t = 0.0
        while not pod.done and t < 2_000.0:
            kk.step_kubelets(t, 10.0)
            t += 10.0
        assert pod.done
        assert "img/learn" in kk.knots.profiles

    def test_plugin_mode_follows_scheduler(self):
        exclusive = KubeKnots(make_paper_cluster(num_nodes=1), UniformScheduler())
        assert not exclusive.kubelets["node1"].plugin.sharing_enabled
        shared = KubeKnots(make_paper_cluster(num_nodes=1), make_scheduler("cbp"))
        assert shared.kubelets["node1"].plugin.sharing_enabled
