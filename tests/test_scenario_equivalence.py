"""Bit-identity and integration guarantees for the scenario engine.

The cornerstone contract of the refactor: a run with ``scenario=None``
and a run with the catalog's "default" scenario (all axes ``None``)
produce byte-for-byte identical output — the scenario machinery must be
perfectly inert until an axis is switched on.  Also covers the sanitized
non-default smoke and the sweep-cache round trip for ScenarioTask.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedulers import make_scheduler
from repro.experiments.runner import ExperimentSettings
from repro.obs.context import Observability
from repro.scenario import make_scenario
from repro.sim.dlsim import run_dl_comparison
from repro.sim.simulator import SimConfig, run_appmix
from repro.sweep import ResultStore, ScenarioTask, last_stats, run_tasks


def _fingerprint(result):
    return (
        result.scheduler,
        result.makespan_ms,
        result.oom_kills,
        result.evictions,
        result.resizes,
        sorted(result.energy_j_per_gpu.items()),
        [(p.uid, p.phase, p.submitted_ms, p.started_ms, p.finished_ms,
          p.gpu_id, p.restart_count) for p in result.pods],
        {k: v.tobytes() for k, v in result.gpu_util_series.items()},
        {k: v.tobytes() for k, v in result.gpu_mem_series.items()},
        result.sample_times_ms.tobytes(),
    )


class TestDefaultScenarioBitIdentity:
    def test_run_appmix_default_scenario_matches_no_scenario(self):
        base = run_appmix("app-mix-1", make_scheduler("cbp"),
                          duration_s=3.0, seed=11, num_nodes=4)
        scen = run_appmix("app-mix-1", make_scheduler("cbp"),
                          duration_s=3.0, seed=11, num_nodes=4,
                          config=SimConfig(scenario=make_scenario("default")))
        assert _fingerprint(base) == _fingerprint(scen)

    def test_run_dl_comparison_default_scenario_matches_no_scenario(self):
        base = run_dl_comparison(jobs_seed=5, policies=("gandiva", "tiresias"))
        scen = run_dl_comparison(jobs_seed=5, policies=("gandiva", "tiresias"),
                                 scenario=make_scenario("default"))
        for name in base:
            for a, b in zip(base[name].jobs, scen[name].jobs, strict=True):
                assert (a.start_s, a.finish_s, a.preemptions, a.migrations) == \
                    (b.start_s, b.finish_s, b.preemptions, b.migrations)

    def test_runs_are_reproducible_across_calls(self):
        # Guard rail for the fingerprint itself: same seed twice is stable.
        a = run_appmix("app-mix-1", make_scheduler("cbp"), duration_s=2.0,
                       seed=3, num_nodes=4)
        b = run_appmix("app-mix-1", make_scheduler("cbp"), duration_s=2.0,
                       seed=3, num_nodes=4)
        assert _fingerprint(a) == _fingerprint(b)


class TestNonDefaultScenarios:
    def test_diurnal_scenario_runs_sanitized(self):
        obs = Observability(trace=False, metrics=False, audit=True, sanitize=True)
        result = run_appmix("app-mix-1", make_scheduler("cbp"),
                            duration_s=4.0, seed=2, num_nodes=8,
                            config=SimConfig(scenario=make_scenario("diurnal")),
                            obs=obs)
        assert obs.sanitizer.violations == []
        assert obs.sanitizer.checks > 0
        assert result.completed()

    def test_gang_scenario_places_whole_gangs(self):
        result = run_appmix("app-mix-1", make_scheduler("cbp"),
                            duration_s=4.0, seed=2, num_nodes=8,
                            gpus_per_node=2,
                            config=SimConfig(scenario=make_scenario("gang")))
        gangs: dict[str, list] = {}
        for pod in result.pods:
            if pod.spec.gang is not None:
                gangs.setdefault(pod.spec.gang.gang_id, []).append(pod)
        assert gangs, "gang mix produced no gangs"
        for members in gangs.values():
            started = [p for p in members if p.started_ms is not None]
            # All-or-nothing: a gang either fully starts or fully waits.
            assert len(started) in (0, len(members))

    def test_network_scenario_charges_pull_latency(self):
        fast = run_appmix("app-mix-1", make_scheduler("cbp"),
                          duration_s=3.0, seed=4, num_nodes=4)
        slow = run_appmix("app-mix-1", make_scheduler("cbp"),
                          duration_s=3.0, seed=4, num_nodes=4,
                          config=SimConfig(scenario=make_scenario("diurnal-gang")))
        # Pulls over the modeled fabric are events, not free prewarms;
        # the run still completes work.
        assert slow.completed()
        assert fast.completed()

    def test_scenario_changes_the_outcome(self):
        base = run_appmix("app-mix-1", make_scheduler("cbp"),
                          duration_s=4.0, seed=2, num_nodes=8)
        diurnal = run_appmix("app-mix-1", make_scheduler("cbp"),
                             duration_s=4.0, seed=2, num_nodes=8,
                             config=SimConfig(scenario=make_scenario("diurnal")))
        assert _fingerprint(base) != _fingerprint(diurnal)


class TestScenarioTaskSweep:
    SMALL = ExperimentSettings(duration_s=2.0, num_nodes=4, seed=7)

    def test_repr_is_a_stable_cache_key(self):
        a = ScenarioTask("diurnal", "app-mix-1", "cbp", self.SMALL)
        b = ScenarioTask("diurnal", "app-mix-1", "cbp", self.SMALL)
        assert repr(a) == repr(b)
        assert a == b

    def test_execute_produces_a_result(self):
        result = ScenarioTask("default", "app-mix-1", "cbp", self.SMALL).execute()
        assert result.scheduler == "cbp"
        assert result.pods

    def test_cache_round_trip_warm_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        tasks = [ScenarioTask("diurnal", "app-mix-1", "cbp", self.SMALL)]
        cold = run_tasks(tasks, jobs=1, store=store, memo=False)
        assert last_stats()["misses"] == 1
        warm = run_tasks(tasks, jobs=1, store=store, memo=False)
        stats = last_stats()
        assert stats["hits"] == 1 and stats["misses"] == 0
        assert _fingerprint(cold[0]) == _fingerprint(warm[0])


class TestExperimentHelpers:
    def test_fragmentation_metric_bounds(self):
        from repro.experiments.scenarios import fragmentation, mean_utilization_pct

        result = run_appmix("app-mix-1", make_scheduler("cbp"),
                            duration_s=2.0, seed=1, num_nodes=4)
        frag = fragmentation(result)
        assert 0.0 <= frag <= 1.0
        assert 0.0 <= mean_utilization_pct(result) <= 100.0

    def test_run_scenarios_reports_per_cell(self):
        from repro.experiments.scenarios import run_scenarios

        settings = ExperimentSettings(duration_s=2.0, num_nodes=4, seed=7)
        out = run_scenarios(("default",), ("cbp",), settings=settings)
        assert ("default", "cbp") in out
