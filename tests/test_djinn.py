"""Tests for the Djinn & Tonic inference workload models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.base import QoSClass
from repro.workloads.djinn_tonic import (
    DEVICE_MEM_MB,
    DJINN_TONIC_PROFILES,
    QOS_THRESHOLD_MS,
    TF_EARMARK_FRACTION,
    inference_memory_mb,
    make_inference_trace,
    tf_managed_memory_mb,
)


class TestMemoryModel:
    def test_single_queries_under_ten_percent(self):
        """Fig. 4: single-query footprints are below ~10 % of the device."""
        for name in DJINN_TONIC_PROFILES:
            assert inference_memory_mb(name, 1) < 0.10 * DEVICE_MEM_MB

    def test_batch128_mostly_under_half(self):
        """Fig. 4: even batch 128 stays under 50 % for every class."""
        under = [
            name
            for name in DJINN_TONIC_PROFILES
            if inference_memory_mb(name, 128) < 0.5 * DEVICE_MEM_MB
        ]
        assert len(under) == len(DJINN_TONIC_PROFILES)

    def test_memory_monotone_in_batch(self):
        for name in DJINN_TONIC_PROFILES:
            sizes = [inference_memory_mb(name, b) for b in (1, 2, 4, 8, 16)]
            assert sizes == sorted(sizes)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            inference_memory_mb("face", 0)

    def test_tf_earmark_grabs_nearly_everything(self):
        assert tf_managed_memory_mb() == pytest.approx(TF_EARMARK_FRACTION * DEVICE_MEM_MB)


class TestTraceGeneration:
    def test_latency_critical_class(self, rng):
        trace = make_inference_trace("face", rng)
        assert trace.qos_class is QoSClass.LATENCY_CRITICAL

    def test_tf_managed_requests_earmark_but_uses_little(self, rng):
        """Observation 5: the TF request is fragmentation, not need."""
        trace = make_inference_trace("ner", rng, tf_managed=True)
        assert trace.requested_mem_mb == pytest.approx(tf_managed_memory_mb())
        assert trace.peak_mem_mb() < 0.1 * trace.requested_mem_mb

    def test_unmanaged_request_tracks_usage(self, rng):
        trace = make_inference_trace("ner", rng, tf_managed=False)
        assert trace.requested_mem_mb < 2 * trace.peak_mem_mb()

    def test_latency_grows_with_batch(self):
        small = make_inference_trace("imc", np.random.default_rng(3), batch_size=1)
        large = make_inference_trace("imc", np.random.default_rng(3), batch_size=64)
        assert large.total_ms > 2 * small.total_ms

    def test_text_queries_faster_than_image(self, rng):
        pos = make_inference_trace("pos", np.random.default_rng(3))
        imc = make_inference_trace("imc", np.random.default_rng(3))
        assert pos.total_ms < imc.total_ms

    def test_trace_has_load_compute_store_structure(self, rng):
        trace = make_inference_trace("face", rng)
        assert len(trace.phases) == 3
        rx = [p.demand.rx_mbps for p in trace.phases]
        assert rx[0] == max(rx)   # weights/input transfer leads

    def test_serving_latency_within_slo_margin(self, rng):
        """An uncontended small-batch query must fit its 150 ms budget."""
        for name in DJINN_TONIC_PROFILES:
            trace = make_inference_trace(name, np.random.default_rng(1), batch_size=8)
            assert trace.total_ms < QOS_THRESHOLD_MS
