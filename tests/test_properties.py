"""Property-based tests for system-wide invariants.

Hypothesis generates workloads and cluster shapes; these tests assert
the invariants that must hold for *every* input — the contracts the
rest of the repository builds on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Bind, Resize, Sleep, Wake
from repro.kube.pod import PodPhase, PodSpec
from repro.sim.simulator import KubeKnotsSimulator
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace

# -- strategies ------------------------------------------------------------

pod_params = st.tuples(
    st.floats(min_value=20.0, max_value=400.0),      # duration_ms
    st.floats(min_value=0.05, max_value=1.0),        # sm
    st.floats(min_value=100.0, max_value=9_000.0),   # mem_mb
    st.floats(min_value=0.5, max_value=1.8),         # request headroom
    st.booleans(),                                   # latency-critical?
)


def make_pod_spec(i: int, params) -> PodSpec:
    duration, sm, mem, headroom, lc = params
    qos = QoSClass.LATENCY_CRITICAL if lc else QoSClass.BATCH
    trace = WorkloadTrace(
        f"gen-{i}",
        [
            Phase(duration * 0.8, ResourceDemand(sm * 0.6, mem * 0.4, 5.0, 5.0)),
            Phase(duration * 0.2, ResourceDemand(sm, mem, 10.0, 10.0)),
        ],
        qos_class=qos,
        requested_mem_mb=min(mem * headroom, 16_384.0),
    )
    return PodSpec(
        name=f"gen-{i}",
        image=f"img/{i % 3}",
        trace=trace,
        qos_threshold_ms=150.0 if lc else None,
    )


workloads = st.lists(pod_params, min_size=1, max_size=12)
scheduler_names = st.sampled_from(["uniform", "res-ag", "cbp", "peak-prediction"])

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSchedulingPassInvariants:
    @given(workloads, scheduler_names)
    @_SETTINGS
    def test_actions_are_well_formed(self, params_list, sched_name):
        """Binds reference pending pods exactly once; allocations fit."""
        cluster = make_paper_cluster(num_nodes=3)
        kk = KubeKnots(cluster, make_scheduler(sched_name))
        pods = [kk.api.submit(make_pod_spec(i, p), 0.0) for i, p in enumerate(params_list)]
        pending = {p.uid for p in pods}

        ctx = kk.build_context(0.0)
        actions = kk.scheduler.schedule(ctx)

        bound = [a for a in actions if isinstance(a, Bind)]
        uids = [a.pod_uid for a in bound]
        assert len(uids) == len(set(uids)), "pod bound twice in one pass"
        assert set(uids) <= pending, "bound a non-pending pod"
        per_gpu: dict[str, float] = {}
        for a in bound:
            assert a.alloc_mb > 0
            per_gpu[a.gpu_id] = per_gpu.get(a.gpu_id, 0.0) + a.alloc_mb
        for gpu_id, total in per_gpu.items():
            cap = cluster.find_gpu(gpu_id).mem_capacity_mb
            assert total <= cap + 1e-6, f"over-reserved {gpu_id}"

    @given(workloads, scheduler_names)
    @_SETTINGS
    def test_applying_actions_never_crashes_substrate(self, params_list, sched_name):
        """Every action a policy emits must be applicable."""
        cluster = make_paper_cluster(num_nodes=3)
        kk = KubeKnots(cluster, make_scheduler(sched_name))
        for i, p in enumerate(params_list):
            kk.api.submit(make_pod_spec(i, p), 0.0)
        kk.scheduling_pass(0.0)   # raises if any action is inconsistent

    @given(workloads)
    @_SETTINGS
    def test_pp_sleep_wake_consistency(self, params_list):
        """PP never sleeps a device it just bound to, nor wakes a busy one."""
        cluster = make_paper_cluster(num_nodes=3)
        kk = KubeKnots(cluster, make_scheduler("peak-prediction"))
        for i, p in enumerate(params_list):
            kk.api.submit(make_pod_spec(i, p), 0.0)
        ctx = kk.build_context(0.0)
        actions = kk.scheduler.schedule(ctx)
        bound_gpus = {a.gpu_id for a in actions if isinstance(a, Bind)}
        slept = {a.gpu_id for a in actions if isinstance(a, Sleep)}
        woken = {a.gpu_id for a in actions if isinstance(a, Wake)}
        assert not (bound_gpus & slept)
        assert woken <= bound_gpus   # waking is only ever for a placement


class TestSimulationInvariants:
    @given(workloads, scheduler_names)
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pod_conservation_and_timestamps(self, params_list, sched_name):
        cluster = make_paper_cluster(num_nodes=3)
        workload = [(i * 20.0, make_pod_spec(i, p)) for i, p in enumerate(params_list)]
        result = KubeKnotsSimulator(cluster, make_scheduler(sched_name), workload).run()

        # conservation: every submitted pod is accounted for
        assert len(result.pods) == len(params_list)
        for pod in result.pods:
            if pod.done:
                assert pod.submitted_ms is not None
                assert pod.scheduled_ms is not None and pod.scheduled_ms >= pod.submitted_ms
                assert pod.started_ms is not None and pod.started_ms >= pod.submitted_ms
                if pod.restart_count == 0:
                    # (relaunched pods keep their *first* start time while
                    # scheduled_ms tracks the latest placement)
                    assert pod.started_ms >= pod.scheduled_ms
                assert pod.finished_ms is not None and pod.finished_ms >= pod.started_ms
            else:
                assert pod.phase in (PodPhase.PENDING, PodPhase.SCHEDULED, PodPhase.RUNNING)

        # energy accounting is positive and telemetry aligned
        assert result.total_energy_j() > 0
        n = len(result.sample_times_ms)
        assert all(len(s) == n for s in result.gpu_util_series.values())
        for series in result.gpu_util_series.values():
            s = np.asarray(series)
            assert (s >= 0).all() and (s <= 1.0 + 1e-9).all()

    @given(workloads)
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cluster_never_ends_overcommitted(self, params_list):
        """After a full run the cluster is drained: no stranded reservations."""
        cluster = make_paper_cluster(num_nodes=3)
        workload = [(i * 20.0, make_pod_spec(i, p)) for i, p in enumerate(params_list)]
        result = KubeKnotsSimulator(cluster, make_scheduler("cbp"), workload).run()
        if all(p.done for p in result.pods):
            for gpu in cluster.gpus():
                assert not gpu.containers
                assert gpu.allocated_mem_mb == 0.0


# -- DL pool: take_compact ---------------------------------------------------


class TestTakeCompactProperties:
    """Contracts of :meth:`repro.sim.dlsim._Pool.take_compact`: the
    gang-placement primitive every DL policy leans on."""

    @staticmethod
    def _pool(n_gpus, gpus_per_node, busy):
        from repro.sim.dlsim import _Pool

        pool = _Pool(n_gpus, gpus_per_node=gpus_per_node)
        pool.take(g for g in busy if g < n_gpus)
        return pool

    @given(
        n_nodes=st.integers(min_value=1, max_value=6),
        gpus_per_node=st.integers(min_value=1, max_value=8),
        busy=st.sets(st.integers(min_value=0, max_value=47), max_size=48),
        k=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_take_compact_contract(self, n_nodes, gpus_per_node, busy, k):
        n_gpus = n_nodes * gpus_per_node
        pool = self._pool(n_gpus, gpus_per_node, busy)
        free_before = set(int(g) for g in pool.free_ids())
        load_before = pool.load.copy()

        chosen = pool.take_compact(k)

        # None exactly when there aren't k free devices.
        if len(free_before) < k:
            assert chosen is None
            return
        assert chosen is not None
        # Exactly k distinct devices, all free.
        assert len(chosen) == k
        assert len(set(chosen)) == k
        assert set(chosen) <= free_before
        # Node-compactness: no placement over fewer nodes exists.  The
        # greedy most-free-first fill achieves the optimum: the minimal
        # node count is reached by taking the fullest nodes first.
        free_per_node = sorted(
            (sum(1 for g in free_before if pool.node_of(g) == n)
             for n in range(n_nodes)),
            reverse=True,
        )
        optimal = 0
        remaining = k
        for capacity in free_per_node:
            if remaining <= 0:
                break
            optimal += 1
            remaining -= capacity
        assert pool.nodes_spanned(chosen) == optimal
        # take/release round-trip restores the load vector untouched.
        pool.take(chosen)
        assert all(pool.load[g] == load_before[g] + 1 for g in chosen)
        pool.release(chosen)
        assert (pool.load == load_before).all()
