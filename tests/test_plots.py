"""Tests for the terminal visualization helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.plots import hbar_chart, sparkline, sparkline_table, timeline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_input_monotone_blocks(self):
        s = sparkline(np.linspace(0, 1, 9))
        assert s == "".join(sorted(s))
        assert s[0] == " " and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_shared_scale(self):
        low = sparkline([0.1, 0.1], lo=0.0, hi=1.0)
        high = sparkline([0.9, 0.9], lo=0.0, hi=1.0)
        assert low != high


class TestSparklineTable:
    def test_labels_aligned_and_scale_printed(self):
        out = sparkline_table({"a": [0, 1], "longer": [1, 0]}, width=10)
        lines = out.splitlines()
        assert lines[0].startswith("a     ")
        assert "scale: 0.00 .. 1.00" in lines[-1]

    def test_downsampling_bounds_width(self):
        out = sparkline_table({"x": np.random.default_rng(0).random(1_000)}, width=20)
        assert len(out.splitlines()[0]) <= 20 + 5

    def test_empty(self):
        assert sparkline_table({}) == ""


class TestHbar:
    def test_bars_proportional(self):
        out = hbar_chart({"half": 0.5, "full": 1.0}, width=10)
        half, full = out.splitlines()
        assert half.count("█") == 5
        assert full.count("█") == 10

    def test_values_printed_with_unit(self):
        out = hbar_chart({"p": 42.0}, unit=" W")
        assert "42.00 W" in out

    def test_empty(self):
        assert hbar_chart({}) == ""


class TestTimeline:
    def test_axis_ticks(self):
        out = timeline([0, 50, 100], [1, 2, 3], width=30, label="util")
        lines = out.splitlines()
        assert lines[0] == "util"
        assert lines[-1].startswith("0")
        assert lines[-1].endswith("100")

    def test_empty(self):
        assert timeline([], []) == ""
