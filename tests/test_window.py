"""Tests for sliding windows, resampling and accuracy evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast.regressors import ArimaForecaster
from repro.forecast.window import (
    SlidingWindow,
    evaluate_forecaster,
    evaluate_peak_predictor,
    resample,
)


class TestSlidingWindow:
    def test_push_and_values(self):
        w = SlidingWindow(4)
        for v in (1.0, 2.0, 3.0):
            w.push(v)
        assert list(w.values()) == [1.0, 2.0, 3.0]
        assert len(w) == 3 and not w.full

    def test_wraparound_order(self):
        w = SlidingWindow(3)
        for v in range(6):
            w.push(float(v))
        assert list(w.values()) == [3.0, 4.0, 5.0]
        assert w.full

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestResample:
    def test_locf_semantics(self):
        times = np.array([0.0, 10.0, 20.0])
        values = np.array([1.0, 2.0, 3.0])
        ticks, sampled = resample(times, values, 5.0)
        assert list(ticks) == [0, 5, 10, 15, 20]
        assert list(sampled) == [1, 1, 2, 2, 3]

    def test_fine_resample_preserves_values(self):
        times = np.arange(100.0)
        values = np.sin(times)
        _, sampled = resample(times, values, 1.0)
        assert np.allclose(sampled, values)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            resample(np.arange(3.0), np.arange(3.0), 0.0)


class TestEvaluateForecaster:
    def test_perfect_on_constant_signal(self):
        times = np.arange(0, 20_000.0, 1.0)
        values = np.full(len(times), 0.5)
        report = evaluate_forecaster(times, values, 100.0, ArimaForecaster(), max_windows=10)
        assert report.accuracy_pct == pytest.approx(100.0)
        assert report.mae == pytest.approx(0.0, abs=1e-9)

    def test_too_short_series_degrades_gracefully(self):
        times = np.arange(0, 100.0, 1.0)
        report = evaluate_forecaster(times, np.ones(100), 1_000.0, ArimaForecaster())
        assert report.n_predictions == 0

    def test_noise_floor_reduces_accuracy(self):
        rng_times = np.arange(0, 30_000.0, 1.0)
        values = 0.5 + 0.2 * np.sin(rng_times / 2_000.0)
        clean = evaluate_forecaster(rng_times, values, 10.0, ArimaForecaster(), max_windows=20)
        noisy = evaluate_forecaster(
            rng_times, values, 10.0, ArimaForecaster(), max_windows=20, noise_floor=0.3
        )
        assert noisy.accuracy_pct < clean.accuracy_pct

    def test_report_metadata(self):
        times = np.arange(0, 30_000.0, 1.0)
        report = evaluate_forecaster(times, np.ones(len(times)), 50.0, ArimaForecaster(), max_windows=7)
        assert report.forecaster == "arima"
        assert report.heartbeat_ms == 50.0
        assert 0 < report.n_predictions <= 7


class TestEvaluatePeakPredictor:
    @staticmethod
    def peaky_signal():
        """0.2 baseline with 0.9 peaks (50 ms) every second."""
        times = np.arange(0, 30_000.0, 0.5)
        values = np.full(len(times), 0.2)
        for start in np.arange(500.0, 29_000.0, 1_000.0):
            mask = (times >= start) & (times < start + 50.0)
            values[mask] = 0.9
        return times, values

    def test_fine_sampling_predicts_peaks(self):
        times, values = self.peaky_signal()
        report = evaluate_peak_predictor(
            times, values, heartbeat_ms=1.0, forecaster=ArimaForecaster(), max_windows=20
        )
        assert report.accuracy_pct > 70.0

    def test_coarse_sampling_misses_peaks(self):
        """A 1000 ms heartbeat aliases 50 ms peaks away."""
        times, values = self.peaky_signal()
        fine = evaluate_peak_predictor(times, values, 1.0, ArimaForecaster(), max_windows=20)
        coarse = evaluate_peak_predictor(times, values, 1_000.0, ArimaForecaster(), max_windows=20)
        assert coarse.accuracy_pct < fine.accuracy_pct

    def test_heavy_noise_degrades_peak_estimate(self):
        times, values = self.peaky_signal()
        clean = evaluate_peak_predictor(times, values, 1.0, ArimaForecaster(), max_windows=20)
        noisy = evaluate_peak_predictor(
            times, values, 1.0, ArimaForecaster(), max_windows=20, noise_floor=0.3
        )
        assert noisy.accuracy_pct < clean.accuracy_pct
