"""Scenario: a mixed-model GPU cluster (the Fig. 5 picture, realized).

Runs the working-set-diverse workload from the heterogeneity extension
on a 2xP100 / M40 / V100 / 2xK80 cluster under plain Peak Prediction
and the capacity-aware extension, then renders each device's
utilization timeline as terminal sparklines — you can *see* the
spill-protected placement keep the 13 GB-peak pods on the big devices.

Run:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import make_heterogeneous_cluster
from repro.cluster.node import GPU_MODELS
from repro.core.schedulers import make_scheduler
from repro.experiments.hetero import FIG5_MODELS, build_hetero_workload
from repro.metrics.plots import hbar_chart, sparkline_table
from repro.sim.simulator import KubeKnotsSimulator


def main() -> None:
    for sched_name in ("peak-prediction", "hetero-pp"):
        cluster = make_heterogeneous_cluster(FIG5_MODELS)
        sim = KubeKnotsSimulator(cluster, make_scheduler(sched_name), build_hetero_workload())
        result = sim.run()

        labels = {}
        for node, model in zip(cluster.nodes, FIG5_MODELS):
            gid = node.gpus[0].gpu_id
            gb = GPU_MODELS[model].mem_mb / 1024
            labels[f"{gid} ({model} {gb:.0f}G)"] = result.gpu_util_series[gid]

        print("=" * 72)
        print(f"{sched_name}: per-device SM utilization over the run")
        print("=" * 72)
        print(sparkline_table(labels, width=56, lo=0.0, hi=1.0))
        print()
        print(
            hbar_chart(
                {
                    "completed pods": float(len(result.completed())),
                    "OOM relaunches": float(result.oom_kills),
                    "harvest resizes": float(result.resizes),
                },
                width=30,
            )
        )
        print()

    print(
        "Under plain PP a harvested large pod can land on a 12 GB device and\n"
        "die at its first memory peak; hetero-PP's spill protection pins the\n"
        "large pods to the P100/V100 rows above."
    )


if __name__ == "__main__":
    main()
