"""Scenario: the 256-GPU deep-learning cluster (paper Sec. V-C).

Runs the 520-DLT / 1400-DLI workload under all four policies — the
GPU-agnostic baseline, Gandiva (time-slicing + migration), Tiresias
(two-queue LAS with preemption) and CBP+PP (backfill + harvested
co-location) — on 32 nodes x 8 GPUs, and prints the Table-IV JCT
ratios plus the Fig.-12b violation rates.

Run:  python examples/dl_cluster_scheduling.py          # full workload (~15 s)
      python examples/dl_cluster_scheduling.py --quick  # reduced workload
"""

from __future__ import annotations

import sys

import numpy as np

from repro.metrics.jct import normalized_jct
from repro.metrics.report import format_table
from repro.sim.dlsim import run_dl_comparison
from repro.workloads.dlt import DLJobKind, DLWorkloadConfig


def main(quick: bool = False) -> None:
    config = (
        DLWorkloadConfig(n_training=100, n_inference=300, window_s=2 * 3_600.0)
        if quick
        else None
    )
    results = run_dl_comparison(jobs_seed=1, config=config)
    ratios = normalized_jct({n: r.jcts_s() for n, r in results.items()}, reference="cbp-pp")

    rows = []
    for name in ("res-ag", "gandiva", "tiresias", "cbp-pp"):
        r = results[name]
        dli = r.jcts_s(DLJobKind.INFERENCE)
        rows.append(
            (
                name,
                *[round(x, 2) for x in ratios[name]],
                float(np.median(dli) * 1_000.0),
                r.qos_violations(),
                sum(j.preemptions for j in r.jobs),
                sum(j.migrations for j in r.jobs),
            )
        )

    print(
        format_table(
            ["policy", "avg JCT x", "med JCT x", "p99 JCT x", "DLI med ms", "SLO viol", "preempts", "migrations"],
            rows,
            title="DL-cluster comparison (JCT normalized by CBP+PP)",
        )
    )
    print(
        "\nCBP+PP wins on average/median JCT by scheduling inference without\n"
        "queueing, preemption or migration; Tiresias trails closely on DLT\n"
        "thanks to LAS; Gandiva pays slice + migration overheads; the\n"
        "agnostic baseline drowns burst queries on its first-fit device."
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
