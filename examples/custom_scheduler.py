"""Scenario: writing your own scheduler against the Kube-Knots API.

Schedulers are pure policies: a ``schedule(ctx)`` method mapping the
Knots cluster view to Bind/Resize/Sleep/Wake actions.  This example
implements a naive *best-fit* packer (tightest reservation fit, no
telemetry, no correlation awareness) in ~30 lines, runs it head-to-head
against CBP and Peak Prediction on the same workload, and prints why
telemetry awareness matters.

Run:  python examples/custom_scheduler.py
"""

from __future__ import annotations

from repro import make_scheduler, run_appmix
from repro.core.schedulers.base import Action, Bind, Scheduler, SchedulingContext
from repro.metrics.percentiles import cluster_percentiles
from repro.metrics.report import format_table


class BestFitScheduler(Scheduler):
    """Tightest-fit bin packing on static requests, telemetry-blind."""

    name = "best-fit"
    requires_sharing = True

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        free = {v.gpu_id: v.free_alloc_mb for v in ctx.knots.all_gpus_by_free_memory()}
        for pod in self.ffd_order(ctx.pending):
            request = pod.spec.requested_mem_mb
            # best fit: the device whose leftover after placement is smallest
            candidates = [g for g, f in free.items() if f >= request]
            if not candidates:
                continue
            gpu_id = min(candidates, key=lambda g: (free[g] - request, g))
            actions.append(Bind(pod.uid, gpu_id, request))
            free[gpu_id] -= request
        return actions


def main() -> None:
    schedulers = {
        "best-fit": BestFitScheduler(),
        "cbp": make_scheduler("cbp"),
        "peak-prediction": make_scheduler("peak-prediction"),
    }
    rows = []
    for name, sched in schedulers.items():
        result = run_appmix("app-mix-1", sched, duration_s=15.0, seed=5)
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            (
                name,
                util.p50,
                result.qos_violations_per_kilo(),
                result.oom_kills,
                result.resizes,
            )
        )
    print(
        format_table(
            ["scheduler", "util p50 %", "QoS viol/kilo", "OOM", "harvests"],
            rows,
            title="Custom best-fit packer vs the Knots-aware schedulers",
            float_fmt="{:.1f}",
        )
    )
    print(
        "\nBest-fit packs tightly but is blind to live queries and usage\n"
        "profiles: it neither harvests reservations nor protects SLOs.\n"
        "Subclass CBPScheduler instead of Scheduler to inherit both."
    )


if __name__ == "__main__":
    main()
