"""Scenario: latency-critical DNN inference serving next to batch HPC.

The paper's motivating workload: user-facing ML queries (object
detection, NLP tagging, ...) arrive in bursts and must finish within a
150 ms SLO while long Rodinia batch jobs churn on the same cluster.
This example builds that workload *by hand* from the public API —
rather than via the Table-I generator — and shows how each scheduler
treats the queries: latency distribution, violations, and where they
were placed.

Run:  python examples/inference_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import KubeKnotsSimulator, make_paper_cluster, make_scheduler
from repro.kube.pod import PodSpec
from repro.metrics.qos import qos_report
from repro.metrics.report import format_table
from repro.workloads.djinn_tonic import QOS_THRESHOLD_MS, make_inference_trace
from repro.workloads.rodinia import make_rodinia_trace


def build_workload(seed: int = 3) -> list:
    """Four long batch jobs plus three bursts of inference queries."""
    rng = np.random.default_rng(seed)
    items = []

    # Long-running batch substrate: one heavy job every 1.5 s.
    for i, app in enumerate(("leukocyte", "mummergpu", "kmeans", "streamcluster")):
        trace = make_rodinia_trace(app, rng, scale=80.0, mem_scale=3.0)
        items.append((i * 1_500.0, PodSpec(f"batch-{app}", f"rodinia/{app}", trace)))

    # Query bursts: 12 queries within ~200 ms, every 2 seconds.
    for burst in range(3):
        t0 = 1_000.0 + burst * 2_000.0
        for q in range(12):
            query = ("face", "key", "ner")[q % 3]
            trace = make_inference_trace(query, rng, batch_size=int(2 ** rng.integers(0, 3)))
            items.append(
                (
                    t0 + q * 18.0,
                    PodSpec(
                        f"query-{burst}-{q}",
                        f"djinn/{query}",
                        trace,
                        qos_threshold_ms=QOS_THRESHOLD_MS,
                    ),
                )
            )
    return items


def main() -> None:
    rows = []
    for name in ("uniform", "res-ag", "peak-prediction"):
        cluster = make_paper_cluster(num_nodes=4)
        result = KubeKnotsSimulator(cluster, make_scheduler(name), build_workload()).run()
        report = qos_report(result.pods)
        placements = {
            p.gpu_id for p in result.latency_pods() if p.gpu_id is not None
        }
        rows.append(
            (
                name,
                report.total_queries,
                report.mean_latency_ms,
                report.p99_latency_ms,
                report.violations,
                len(placements),
            )
        )

    print(
        format_table(
            ["scheduler", "queries", "mean ms", "p99 ms", "violations", "GPUs used"],
            rows,
            title="Inference serving under batch pressure (150 ms SLO)",
            float_fmt="{:.1f}",
        )
    )
    print(
        "\nThe agnostic packer piles burst queries onto busy devices\n"
        "(interference stretches the tail); Peak Prediction spreads each\n"
        "burst across compute-cool devices and keeps the SLO."
    )


if __name__ == "__main__":
    main()
