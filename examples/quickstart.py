"""Quickstart: schedule a datacenter app-mix with Kube-Knots.

Runs the paper's app-mix-1 (high, steady load: Rodinia batch jobs plus
face/keyword inference queries under Alibaba-style arrivals) on the
ten-node P100 cluster twice — once under the GPU-agnostic sharing
baseline (Res-Ag) and once under the Peak Prediction scheduler — and
prints the cluster-wide utilization, QoS and power comparison.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import make_scheduler, run_appmix
from repro.metrics.percentiles import cluster_percentiles
from repro.metrics.report import format_table


def main() -> None:
    rows = []
    for name in ("res-ag", "peak-prediction"):
        result = run_appmix(
            "app-mix-1",
            make_scheduler(name),
            duration_s=20.0,   # length of the arrival window
            seed=7,            # same seed -> identical workload, paired run
        )
        util = cluster_percentiles(result.gpu_util_series)
        mean_power = result.total_energy_j() / (result.makespan_ms / 1_000.0)
        rows.append(
            (
                name,
                len(result.completed()),
                util.p50,
                util.p99,
                result.qos_violations_per_kilo(),
                result.oom_kills,
                mean_power,
            )
        )

    print(
        format_table(
            ["scheduler", "pods", "util p50 %", "util p99 %", "QoS viol/kilo", "OOM", "power W"],
            rows,
            title="Kube-Knots quickstart: app-mix-1 on 10x P100",
        )
    )
    print(
        "\nPeak Prediction should show higher median utilization, fewer QoS\n"
        "violations and lower mean cluster power than the agnostic baseline."
    )


if __name__ == "__main__":
    main()
