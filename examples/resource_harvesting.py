"""Scenario: watching the harvester work.

CBP/PP right-size containers from *runtime feedback*: the first pods of
an image run with the user's (over-stated) request; once Knots has
observed the image, new pods are provisioned at the 80th-percentile
footprint and over-provisioned residents are resized down.  This
example submits three waves of the same over-requesting batch image and
prints, per wave, the reservations granted and the resize (harvest)
events — the mechanism behind the paper's utilization gains.

Run:  python examples/resource_harvesting.py
"""

from __future__ import annotations

import numpy as np

from repro import KubeKnotsSimulator, make_paper_cluster, make_scheduler
from repro.kube.api import EventType
from repro.kube.pod import PodSpec
from repro.metrics.report import format_table
from repro.workloads.rodinia import make_rodinia_trace


def build_waves(n_waves: int = 3, pods_per_wave: int = 4, seed: int = 11) -> list:
    rng = np.random.default_rng(seed)
    items = []
    for wave in range(n_waves):
        for i in range(pods_per_wave):
            # users ask for 1.6x the true peak — classic over-provisioning
            trace = make_rodinia_trace(
                "kmeans", rng, scale=25.0, mem_scale=3.0, requested_headroom=1.6
            )
            items.append(
                (wave * 2_500.0 + i * 60.0, PodSpec(f"w{wave}-p{i}", "rodinia/kmeans", trace))
            )
    return items


def main() -> None:
    cluster = make_paper_cluster(num_nodes=2)
    workload = build_waves()
    sim = KubeKnotsSimulator(cluster, make_scheduler("peak-prediction"), workload)
    result = sim.run()

    api = sim.orchestrator.api
    bound = {e.pod_uid: e for e in api.events if e.type is EventType.BOUND}
    rows = []
    for pod in sorted(result.pods, key=lambda p: p.submitted_ms):
        event = bound.get(pod.uid)
        rows.append(
            (
                pod.spec.name,
                pod.spec.requested_mem_mb,
                float(event.detail.split("alloc=")[1].rstrip("MB")) if event else float("nan"),
                pod.spec.trace.peak_mem_mb(),
            )
        )

    print(
        format_table(
            ["pod", "requested MB", "granted MB", "true peak MB"],
            rows,
            title="Reservations shrink as the image profile accumulates",
            float_fmt="{:.0f}",
        )
    )
    resizes = api.events_of(EventType.RESIZED)
    print(f"\nharvest (docker resize) events during the run: {len(resizes)}")
    for e in resizes[:5]:
        print(f"  t={e.time:7.0f} ms  {e.pod_uid}: {e.detail}")
    print(
        "\nWave 0 runs at the user's request (no profile yet); later waves\n"
        "are provisioned near the observed 80th-percentile footprint, and\n"
        "residents admitted before the profile existed get resized down."
    )


if __name__ == "__main__":
    main()
